"""A single tier of the n-tier system.

Each tier couples three things:

* a finite *concurrency pool* (server threads / DB connections) — the
  paper's per-tier queue size ``Q_i``;
* the tier VM's processor-sharing CPU, where service demand is burned;
* a reference to its downstream tier, invoked **synchronously**: the
  thread is held while the downstream call is outstanding.  This
  RPC-style coupling is the amplification mechanism — one queued
  request in MySQL pins a thread in Tomcat *and* Apache, so a
  millibottleneck at the back end drains the concurrency of every
  upstream tier (Section IV-B).

The front-most tier is created with a bounded backlog
(``max_backlog``): when it overflows, the request is dropped at TCP
level and :class:`TierOverflowError` propagates to the client, which
retransmits after the RTO.  Inner tiers wait (their waiters are bounded
naturally by the upstream tier's own pool).
"""

from __future__ import annotations

from typing import Generator, Optional

from ..hardware.vm import VirtualMachine
from ..sim.core import _PENDING, Simulator, Timeout
from ..sim.resources import CapacityError, Resource
from .request import Request

__all__ = ["Tier", "TierOverflowError"]


class TierOverflowError(Exception):
    """A tier's admission queue was full; the request was dropped."""

    def __init__(self, tier: str):
        super().__init__(f"queue overflow at tier {tier!r}")
        self.tier = tier


class Tier:
    """One tier: thread pool + CPU + synchronous downstream link."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        vm: VirtualMachine,
        concurrency: int,
        max_backlog: Optional[int] = None,
        net_delay: float = 0.0002,
        work_split: float = 0.85,
    ):
        if not 0.0 < work_split <= 1.0:
            raise ValueError(f"work_split outside (0,1]: {work_split}")
        self.sim = sim
        self.name = name
        self.vm = vm
        self.pool = Resource(sim, capacity=concurrency, max_queue=max_backlog)
        self.downstream: Optional["Tier"] = None
        self.net_delay = net_delay
        # Directed queue chains to/from the downstream tier, installed
        # by repro.net.TierNetwork.attach when a scenario routes RPCs
        # through the finite-queue network model.  None (the default)
        # keeps the fixed net_delay hop — byte-identical to pre-network
        # behavior.
        self.link_down = None
        self.link_up = None
        self.work_split = work_split
        self.arrivals = 0
        self.completions = 0
        self.drops = 0
        # (downstream, "a->b", "b->a") net-span name cache, built on
        # first traced use so the f-strings are not re-formatted per
        # request.
        self._net_names: Optional[tuple] = None

    @property
    def concurrency(self) -> int:
        """The paper's ``Q_i``: maximum simultaneous requests in-tier."""
        return self.pool.capacity

    @property
    def occupancy(self) -> int:
        """Requests holding or waiting for this tier's pool.

        Note that with synchronous RPC a request deep in a downstream
        tier still holds this tier's thread, so occupancies are nested:
        ``occupancy_front >= occupancy_back`` always.
        """
        return self.pool.occupancy

    @property
    def admission_capacity(self) -> Optional[int]:
        """Total slots before a drop (None = blocking, never drops)."""
        if self.pool.max_queue is None:
            return None
        return self.pool.capacity + self.pool.max_queue

    @property
    def queue_length(self) -> int:
        """The paper's per-tier queue length (Figs 6b/9c).

        The number of this tier's concurrency slots in use, capped at
        the tier's admission capacity: waiters beyond the cap are
        attributed to the upstream tier they are pinned in.  Because
        occupancies are nested and each tier clips at its own Q_i, the
        tiers visibly saturate in back-to-front sequence during a
        burst — exactly the paper's cross-tier overflow picture.
        """
        cap = self.admission_capacity
        if cap is None:
            cap = self.pool.capacity
        return min(self.occupancy, cap)

    def _execute(self, work: float, trace=None) -> Generator:
        """Run ``work`` on this tier's CPU, cancelling it if aborted.

        Without the cancel, a request killed mid-service (e.g. by an
        interrupt injected into its process) would leave a ghost job
        consuming CPU capacity forever.

        When the request is traced, the slice is recorded as a
        ``service`` span annotated with the nominal work and the
        *effective speed* actually delivered (work / wall duration) —
        under a memory-contention burst this drops below the CPU's
        nominal speed even though the vCPU looks busy, which is exactly
        the paper's cross-resource signature.
        """
        cpu = self.vm.cpu
        job = cpu.execute(work)
        if trace is None:
            try:
                yield job
            except BaseException:
                if not job.triggered:
                    cpu.cancel(job)
                raise
            return
        sim = self.sim
        start = sim._now
        speed = cpu._speed
        try:
            yield job
        except BaseException:
            if job._value is _PENDING:
                cpu.cancel(job)
            trace.add(
                "service", self.name, start, sim._now,
                work=work, speed_at_start=speed, aborted=True,
            )
            raise
        end = sim._now
        effective = work / (end - start) if end > start else speed
        trace.add(
            "service", self.name, start, end,
            work=work, speed_at_start=speed,
            effective_speed=effective,
        )

    def handle(self, request: Request) -> Generator:
        """Process ``request`` in this tier (and, recursively, below).

        A generator intended for ``yield from`` inside the client's
        process, so the whole request path is one coroutine — exactly
        the synchronous RPC chain of the real system.
        """
        sim = self.sim
        name = self.name
        enter = sim._now
        self.arrivals += 1
        trace = request.trace
        if trace is not None:
            trace.begin("tier", name, enter)
        try:
            try:
                token = self.pool.request()
            except CapacityError:
                self.drops += 1
                raise TierOverflowError(name) from None
            try:
                yield token
                if trace is not None:
                    trace.add("queue_wait", name, enter, sim._now)
                demands = request.demands
                demand = demands.get(name, 0.0)
                downstream = self.downstream
                goes_down = (
                    downstream is not None
                    and demands.get(downstream.name, 0.0) > 0.0
                )
                pre = demand * self.work_split if goes_down else demand
                post = demand - pre
                net_delay = self.net_delay
                if pre > 0:
                    # CPU slices run inline instead of delegating into
                    # _execute: one fewer generator frame on every
                    # resume.  The traced arm mirrors _execute's span
                    # exactly.
                    cpu = self.vm.cpu
                    job = cpu.execute(pre)
                    if trace is None:
                        try:
                            yield job
                        except BaseException:
                            if job._value is _PENDING:
                                cpu.cancel(job)
                            raise
                    else:
                        start = sim._now
                        speed = cpu._speed
                        try:
                            yield job
                        except BaseException:
                            if job._value is _PENDING:
                                cpu.cancel(job)
                            trace.add(
                                "service", name, start, sim._now,
                                work=pre, speed_at_start=speed,
                                aborted=True,
                            )
                            raise
                        end = sim._now
                        trace.add(
                            "service", name, start, end,
                            work=pre, speed_at_start=speed,
                            effective_speed=(
                                pre / (end - start)
                                if end > start
                                else speed
                            ),
                        )
                if goes_down:
                    if trace is not None:
                        net_names = self._net_names
                        if (
                            net_names is None
                            or net_names[0] is not downstream
                        ):
                            net_names = self._net_names = (
                                downstream,
                                f"{name}->{downstream.name}",
                                f"{downstream.name}->{name}",
                            )
                    link = self.link_down
                    if link is not None:
                        # Routed hop: the message traverses the finite
                        # queue chain (NIC ring -> qdisc -> switch ->
                        # ring), retransmitting on drops while this
                        # tier's thread stays held.
                        yield from link.transfer(
                            trace,
                            net_names[1] if trace is not None else None,
                        )
                    elif net_delay > 0:
                        hop = sim._now
                        # Direct construction skips the sim.timeout()
                        # wrapper frame — two hops per downstream call
                        # makes this one of the hottest event sites.
                        yield Timeout(sim, net_delay)
                        if trace is not None:
                            trace.add("net", net_names[1], hop, sim._now)
                    yield from downstream.handle(request)
                    link = self.link_up
                    if link is not None:
                        yield from link.transfer(
                            trace,
                            net_names[2] if trace is not None else None,
                        )
                    elif net_delay > 0:
                        hop = sim._now
                        yield Timeout(sim, net_delay)
                        if trace is not None:
                            trace.add("net", net_names[2], hop, sim._now)
                if post > 0:
                    cpu = self.vm.cpu
                    job = cpu.execute(post)
                    if trace is None:
                        try:
                            yield job
                        except BaseException:
                            if job._value is _PENDING:
                                cpu.cancel(job)
                            raise
                    else:
                        start = sim._now
                        speed = cpu._speed
                        try:
                            yield job
                        except BaseException:
                            if job._value is _PENDING:
                                cpu.cancel(job)
                            trace.add(
                                "service", name, start, sim._now,
                                work=post, speed_at_start=speed,
                                aborted=True,
                            )
                            raise
                        end = sim._now
                        trace.add(
                            "service", name, start, end,
                            work=post, speed_at_start=speed,
                            effective_speed=(
                                post / (end - start)
                                if end > start
                                else speed
                            ),
                        )
            finally:
                pool = self.pool
                if token in pool.users:
                    pool.release(token)
                else:
                    # Aborted while still waiting for a thread.
                    pool.cancel(token)
        except BaseException as exc:
            if trace is not None:
                trace.end(sim._now, error=type(exc).__name__)
            raise
        self.completions += 1
        request.record_span(name, enter, sim._now)
        if trace is not None:
            trace.end(sim._now)

    def serve_local(self, request: Request) -> Generator:
        """Serve only this tier's demand (tandem-queue mode).

        Used by :meth:`NTierApplication.serve_tandem`, where tiers are
        independent stations with no cross-tier thread coupling.
        """
        enter = self.sim.now
        self.arrivals += 1
        trace = request.trace
        if trace is not None:
            trace.begin("tier", self.name, enter)
        try:
            token = self.pool.request()
            try:
                yield token
                if trace is not None:
                    trace.add("queue_wait", self.name, enter, self.sim.now)
                demand = request.demand(self.name)
                if demand > 0:
                    yield from self._execute(demand, trace)
            finally:
                if token in self.pool.users:
                    self.pool.release(token)
                else:
                    self.pool.cancel(token)
        except BaseException as exc:
            if trace is not None:
                trace.end(self.sim.now, error=type(exc).__name__)
            raise
        self.completions += 1
        if trace is not None:
            trace.end(self.sim.now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Tier({self.name!r}, Q={self.concurrency}, "
            f"occupancy={self.occupancy})"
        )
