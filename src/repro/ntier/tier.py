"""A single tier of the n-tier system.

Each tier couples three things:

* a finite *concurrency pool* (server threads / DB connections) — the
  paper's per-tier queue size ``Q_i``;
* the tier VM's processor-sharing CPU, where service demand is burned;
* a reference to its downstream tier, invoked **synchronously**: the
  thread is held while the downstream call is outstanding.  This
  RPC-style coupling is the amplification mechanism — one queued
  request in MySQL pins a thread in Tomcat *and* Apache, so a
  millibottleneck at the back end drains the concurrency of every
  upstream tier (Section IV-B).

The front-most tier is created with a bounded backlog
(``max_backlog``): when it overflows, the request is dropped at TCP
level and :class:`TierOverflowError` propagates to the client, which
retransmits after the RTO.  Inner tiers wait (their waiters are bounded
naturally by the upstream tier's own pool).
"""

from __future__ import annotations

from typing import Generator, Optional

from ..hardware.vm import VirtualMachine
from ..sim.core import Simulator
from ..sim.resources import CapacityError, Resource
from .request import Request

__all__ = ["Tier", "TierOverflowError"]


class TierOverflowError(Exception):
    """A tier's admission queue was full; the request was dropped."""

    def __init__(self, tier: str):
        super().__init__(f"queue overflow at tier {tier!r}")
        self.tier = tier


class Tier:
    """One tier: thread pool + CPU + synchronous downstream link."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        vm: VirtualMachine,
        concurrency: int,
        max_backlog: Optional[int] = None,
        net_delay: float = 0.0002,
        work_split: float = 0.85,
    ):
        if not 0.0 < work_split <= 1.0:
            raise ValueError(f"work_split outside (0,1]: {work_split}")
        self.sim = sim
        self.name = name
        self.vm = vm
        self.pool = Resource(sim, capacity=concurrency, max_queue=max_backlog)
        self.downstream: Optional["Tier"] = None
        self.net_delay = net_delay
        self.work_split = work_split
        self.arrivals = 0
        self.completions = 0
        self.drops = 0

    @property
    def concurrency(self) -> int:
        """The paper's ``Q_i``: maximum simultaneous requests in-tier."""
        return self.pool.capacity

    @property
    def occupancy(self) -> int:
        """Requests holding or waiting for this tier's pool.

        Note that with synchronous RPC a request deep in a downstream
        tier still holds this tier's thread, so occupancies are nested:
        ``occupancy_front >= occupancy_back`` always.
        """
        return self.pool.occupancy

    @property
    def admission_capacity(self) -> Optional[int]:
        """Total slots before a drop (None = blocking, never drops)."""
        if self.pool.max_queue is None:
            return None
        return self.pool.capacity + self.pool.max_queue

    @property
    def queue_length(self) -> int:
        """The paper's per-tier queue length (Figs 6b/9c).

        The number of this tier's concurrency slots in use, capped at
        the tier's admission capacity: waiters beyond the cap are
        attributed to the upstream tier they are pinned in.  Because
        occupancies are nested and each tier clips at its own Q_i, the
        tiers visibly saturate in back-to-front sequence during a
        burst — exactly the paper's cross-tier overflow picture.
        """
        cap = self.admission_capacity
        if cap is None:
            cap = self.pool.capacity
        return min(self.occupancy, cap)

    def _execute(self, work: float, trace=None) -> Generator:
        """Run ``work`` on this tier's CPU, cancelling it if aborted.

        Without the cancel, a request killed mid-service (e.g. by an
        interrupt injected into its process) would leave a ghost job
        consuming CPU capacity forever.

        When the request is traced, the slice is recorded as a
        ``service`` span annotated with the nominal work and the
        *effective speed* actually delivered (work / wall duration) —
        under a memory-contention burst this drops below the CPU's
        nominal speed even though the vCPU looks busy, which is exactly
        the paper's cross-resource signature.
        """
        cpu = self.vm.cpu
        job = cpu.execute(work)
        if trace is None:
            try:
                yield job
            except BaseException:
                if not job.triggered:
                    cpu.cancel(job)
                raise
            return
        start = self.sim.now
        speed = cpu.speed
        try:
            yield job
        except BaseException:
            if not job.triggered:
                cpu.cancel(job)
            trace.add(
                "service", self.name, start, self.sim.now,
                work=work, speed_at_start=speed, aborted=True,
            )
            raise
        end = self.sim.now
        effective = work / (end - start) if end > start else speed
        trace.add(
            "service", self.name, start, end,
            work=work, speed_at_start=speed,
            effective_speed=effective,
        )

    def handle(self, request: Request) -> Generator:
        """Process ``request`` in this tier (and, recursively, below).

        A generator intended for ``yield from`` inside the client's
        process, so the whole request path is one coroutine — exactly
        the synchronous RPC chain of the real system.
        """
        enter = self.sim.now
        self.arrivals += 1
        trace = request.trace
        if trace is not None:
            trace.begin("tier", self.name, enter)
        try:
            try:
                token = self.pool.request()
            except CapacityError:
                self.drops += 1
                raise TierOverflowError(self.name) from None
            try:
                yield token
                if trace is not None:
                    trace.add("queue_wait", self.name, enter, self.sim.now)
                demand = request.demand(self.name)
                goes_down = (
                    self.downstream is not None
                    and request.visits(self.downstream.name)
                )
                pre = demand * self.work_split if goes_down else demand
                post = demand - pre
                if pre > 0:
                    yield from self._execute(pre, trace)
                if goes_down:
                    if self.net_delay > 0:
                        hop = self.sim.now
                        yield self.sim.timeout(self.net_delay)
                        if trace is not None:
                            trace.add(
                                "net",
                                f"{self.name}->{self.downstream.name}",
                                hop, self.sim.now,
                            )
                    yield from self.downstream.handle(request)
                    if self.net_delay > 0:
                        hop = self.sim.now
                        yield self.sim.timeout(self.net_delay)
                        if trace is not None:
                            trace.add(
                                "net",
                                f"{self.downstream.name}->{self.name}",
                                hop, self.sim.now,
                            )
                if post > 0:
                    yield from self._execute(post, trace)
            finally:
                if token in self.pool.users:
                    self.pool.release(token)
                else:
                    # Aborted while still waiting for a thread.
                    self.pool.cancel(token)
        except BaseException as exc:
            if trace is not None:
                trace.end(self.sim.now, error=type(exc).__name__)
            raise
        self.completions += 1
        request.record_span(self.name, enter, self.sim.now)
        if trace is not None:
            trace.end(self.sim.now)

    def serve_local(self, request: Request) -> Generator:
        """Serve only this tier's demand (tandem-queue mode).

        Used by :meth:`NTierApplication.serve_tandem`, where tiers are
        independent stations with no cross-tier thread coupling.
        """
        enter = self.sim.now
        self.arrivals += 1
        trace = request.trace
        if trace is not None:
            trace.begin("tier", self.name, enter)
        try:
            token = self.pool.request()
            try:
                yield token
                if trace is not None:
                    trace.add("queue_wait", self.name, enter, self.sim.now)
                demand = request.demand(self.name)
                if demand > 0:
                    yield from self._execute(demand, trace)
            finally:
                if token in self.pool.users:
                    self.pool.release(token)
                else:
                    self.pool.cancel(token)
        except BaseException as exc:
            if trace is not None:
                trace.end(self.sim.now, error=type(exc).__name__)
            raise
        self.completions += 1
        if trace is not None:
            trace.end(self.sim.now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Tier({self.name!r}, Q={self.concurrency}, "
            f"occupancy={self.occupancy})"
        )
