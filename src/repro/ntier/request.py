"""Request records flowing through the simulated n-tier system.

A :class:`Request` carries its per-tier service demands (sampled by the
workload generator) and accumulates the measurements the paper reports:
per-tier response-time spans (Fig 2), client-perceived response time
including TCP retransmissions (Fig 9d), and drop/retry accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs.span import Trace

__all__ = ["Request"]


@dataclass
class Request:
    """One client request and everything that happened to it."""

    rid: int
    page: str
    #: Per-tier CPU demand in seconds at nominal speed, e.g.
    #: ``{"apache": 0.0003, "tomcat": 0.0008, "mysql": 0.0022}``.
    demands: Dict[str, float]
    #: Simulation time of the client's *first* transmission attempt.
    t_first_attempt: float = 0.0
    #: Completion time (response received by the client), if completed.
    t_done: Optional[float] = None
    #: Number of transmission attempts (1 = no retransmission).
    attempts: int = 0
    #: True once the client has given up after exhausting retries.
    failed: bool = False
    #: Per-tier (enter, leave) spans; one tuple per visit.
    tier_spans: Dict[str, List[Tuple[float, float]]] = field(
        default_factory=dict
    )
    #: Send time of every transmission attempt (Fig 9d offline replay).
    attempt_times: List[float] = field(default_factory=list)
    #: Tier that dropped each failed attempt, in drop order.
    drop_tiers: List[str] = field(default_factory=list)
    #: Population scale weight: how many real users this request's
    #: sender stands for (1.0 in full-DES runs; ``users / sampled`` in
    #: hybrid fluid/DES runs, where throughput-style aggregates must
    #: weight each sampled request accordingly).
    weight: float = 1.0
    #: Span tree, present only when a recording tracer adopted this
    #: request (``repro.obs``); ``None`` is the disabled fast path.
    trace: Optional["Trace"] = field(
        default=None, repr=False, compare=False
    )

    def demand(self, tier: str) -> float:
        """CPU demand at ``tier`` (0.0 if the page skips the tier)."""
        return self.demands.get(tier, 0.0)

    def visits(self, tier: str) -> bool:
        """Whether this request's page touches ``tier`` at all."""
        return self.demands.get(tier, 0.0) > 0.0

    def record_span(self, tier: str, enter: float, leave: float) -> None:
        """Record one tier visit's (enter, leave) span."""
        self.tier_spans.setdefault(tier, []).append((enter, leave))

    def tier_response_time(self, tier: str) -> Optional[float]:
        """Time spent in ``tier`` (queueing + service + downstream)."""
        spans = self.tier_spans.get(tier)
        if not spans:
            return None
        return sum(leave - enter for enter, leave in spans)

    @property
    def completed(self) -> bool:
        return self.t_done is not None and not self.failed

    @property
    def response_time(self) -> Optional[float]:
        """Client-perceived response time, retransmissions included."""
        if self.t_done is None:
            return None
        return self.t_done - self.t_first_attempt

    @property
    def was_retransmitted(self) -> bool:
        return self.attempts > 1

    @property
    def drops(self) -> int:
        """Number of dropped transmission attempts."""
        return len(self.drop_tiers)
