"""Kernel event bus and DES self-profiling.

:class:`EventBus` is an in-process publish/subscribe fabric: any
component can ``publish(topic, payload)`` and any number of listeners
receive it synchronously.  The tracer publishes request lifecycle
topics (``request.started`` / ``request.dropped`` /
``request.completed`` / ``request.failed``); consumers — the streaming
telemetry pipeline (:mod:`repro.obs.streaming`), the latency-triggered
defense (``slo.violation`` / ``millibottleneck.onset``), exporters —
subscribe without the emitting code knowing about them.

:class:`KernelProfiler` plugs into the :class:`~repro.sim.core.Simulator`
hook slot (see ``Simulator.attach_hooks``) and measures the simulator
itself: events dispatched, process spawns, heap depth watermarks, and
wall-clock time per simulated second — the numbers that tell us whether
the kernel, not the model, is the bottleneck as scenarios scale.
"""

from __future__ import annotations

import logging
import time as _time
from typing import Any, Callable, Dict, List, Optional

from ..monitoring.metrics import TimeSeries
from .metrics import MetricsRegistry

__all__ = ["EventBus", "KernelProfiler"]

_log = logging.getLogger(__name__)


class EventBus:
    """Synchronous topic-based publish/subscribe.

    Publishers run inside the simulation kernel (the tracer publishes
    from the request hot path), so delivery is *isolated*: a subscriber
    that raises is logged and skipped instead of unwinding the client
    coroutine that happened to publish, and the failure is tallied in
    :attr:`delivery_errors`.  Subscribers may unsubscribe anyone —
    including themselves — during a publish; delivery for the publish
    in flight uses a snapshot of the subscription list.

    A topic ending in ``.*`` subscribes to the whole *family*: a
    ``"net.*"`` subscriber receives every ``net.delivered`` /
    ``net.dropped`` / ``net.failed`` publish.  (Before the network
    family landed, such a subscription silently registered a literal
    topic that nothing ever published to.)  Patterns match on the
    dotted prefix only — ``"net.*"`` does not match a bare ``"net"``.
    """

    def __init__(self):
        self._subscribers: Dict[str, List[Callable[[Any], None]]] = {}
        #: dotted prefix (e.g. "net.") -> family subscribers.
        self._patterns: Dict[str, List[Callable[[Any], None]]] = {}
        self.published: Dict[str, int] = {}
        #: topic -> count of subscriber callbacks that raised.
        self.delivery_errors: Dict[str, int] = {}

    def subscribe(
        self, topic: str, fn: Callable[[Any], None]
    ) -> Callable[[], None]:
        """Register ``fn`` for ``topic``; returns an unsubscribe callable.

        ``topic`` may be a family pattern like ``"net.*"``.
        """
        if topic.endswith(".*"):
            registry, key = self._patterns, topic[:-1]
        else:
            registry, key = self._subscribers, topic
        registry.setdefault(key, []).append(fn)

        def unsubscribe() -> None:
            try:
                registry[key].remove(fn)
            except (KeyError, ValueError):
                pass

        return unsubscribe

    def _listeners_for(self, topic: str) -> List[Callable[[Any], None]]:
        """Snapshot of every callback a publish to ``topic`` reaches."""
        listeners = list(self._subscribers.get(topic, ()))
        if self._patterns:
            for prefix, fns in self._patterns.items():
                if topic.startswith(prefix):
                    listeners.extend(fns)
        return listeners

    def publish(self, topic: str, payload: Any = None) -> int:
        """Deliver ``payload`` to every subscriber.

        Returns the number of *successful* deliveries.  A subscriber
        exception is logged and counted, never propagated: the bus sits
        between the kernel's instrumentation sites and arbitrary
        consumer code, and a broken consumer must not kill the
        simulation it is observing.
        """
        self.published[topic] = self.published.get(topic, 0) + 1
        # Snapshot: subscribe/unsubscribe during delivery affects the
        # next publish, not the one in flight.
        listeners = self._listeners_for(topic)
        if not listeners:
            return 0
        delivered = 0
        for fn in listeners:
            try:
                fn(payload)
                delivered += 1
            except Exception:
                self.delivery_errors[topic] = (
                    self.delivery_errors.get(topic, 0) + 1
                )
                _log.exception(
                    "subscriber %r failed on topic %r", fn, topic
                )
        return delivered

    def subscriber_count(self, topic: str) -> int:
        """Callbacks a publish to ``topic`` would reach.

        With a pattern argument (``"net.*"``), the family's own
        subscriber count.
        """
        if topic.endswith(".*"):
            return len(self._patterns.get(topic[:-1], ()))
        return len(self._listeners_for(topic))


class KernelProfiler:
    """Simulator self-profiling via the kernel hook slot.

    Implements the batched hook protocol the simulator expects:
    ``on_events(count, now, heap_len)`` once every ``event_stride``
    dispatched events (plus a final remainder flush when ``run``
    returns, so :attr:`events_dispatched` is exact) and
    ``on_process(process)`` at each process spawn.  Heap-depth
    statistics are *sampled* at the stride cadence; cumulative event
    and process counts are exact.  The stride keeps the per-event cost
    inside the dispatch loop to a couple of integer operations.
    """

    def __init__(
        self,
        sample_every: int = 1024,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1: {sample_every}")
        self.sample_every = int(sample_every)
        self.metrics = metrics
        self.events_dispatched = 0
        self.processes_started = 0
        self.peak_heap_depth = 0
        self._heap_depth_sum = 0
        #: (sim time, cumulative wall seconds) checkpoints.
        self.checkpoints: List[tuple] = []
        self._wall_start: Optional[float] = None

    # -- simulator hook protocol ----------------------------------------

    @property
    def event_stride(self) -> int:
        """How often the dispatch loop calls :meth:`on_events`."""
        return self.sample_every

    def on_attach(self, sim) -> None:
        self._wall_start = _time.perf_counter()
        self.checkpoints.append((sim.now, 0.0))

    def on_events(self, count: int, now: float, heap_len: int) -> None:
        self.events_dispatched += count
        self._heap_depth_sum += heap_len * count
        if heap_len > self.peak_heap_depth:
            self.peak_heap_depth = heap_len
        if self.events_dispatched % self.sample_every == 0:
            wall = _time.perf_counter() - self._wall_start
            self.checkpoints.append((now, wall))

    def on_process(self, process) -> None:
        self.processes_started += 1

    # -- derived views ---------------------------------------------------

    @property
    def mean_heap_depth(self) -> float:
        if self.events_dispatched == 0:
            return 0.0
        return self._heap_depth_sum / self.events_dispatched

    def wall_time_per_sim_second(self) -> TimeSeries:
        """Wall seconds burned per simulated second, over sim time.

        Zero-width sim intervals (many events at one instant) are
        folded into the next advancing interval.
        """
        out = TimeSeries("wall-per-sim-second")
        pending_wall = 0.0
        for (t0, w0), (t1, w1) in zip(
            self.checkpoints, self.checkpoints[1:]
        ):
            pending_wall += w1 - w0
            if t1 > t0:
                out.append(t1, pending_wall / (t1 - t0))
                pending_wall = 0.0
        return out

    def summary(self) -> dict:
        """Kernel health numbers, also mirrored into the registry."""
        wall = 0.0
        if self._wall_start is not None:
            wall = _time.perf_counter() - self._wall_start
        out = {
            "events_dispatched": self.events_dispatched,
            "processes_started": self.processes_started,
            "peak_heap_depth": self.peak_heap_depth,
            "mean_heap_depth": self.mean_heap_depth,
            "wall_seconds": wall,
        }
        if self.checkpoints:
            sim_elapsed = self.checkpoints[-1][0] - self.checkpoints[0][0]
            if sim_elapsed > 0:
                out["wall_per_sim_second"] = (
                    self.checkpoints[-1][1] / sim_elapsed
                )
        if self.metrics is not None:
            self.metrics.counter("kernel.events_dispatched").value = (
                self.events_dispatched
            )
            self.metrics.counter("kernel.processes_started").value = (
                self.processes_started
            )
            self.metrics.gauge("kernel.peak_heap_depth").set(
                self.peak_heap_depth
            )
        return out
