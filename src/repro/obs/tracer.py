"""Request tracers: the recording tracer and its null fast path.

Instrumentation sites never talk to the tracer on the hot path — they
check ``request.trace`` (a plain attribute, ``None`` unless a recording
tracer adopted the request at send time) and skip all span work when it
is ``None``.  That keeps the disabled-tracing overhead to one attribute
load per site and, because tracing schedules no simulation events,
guarantees byte-identical results with tracing on or off.

:data:`NULL_TRACER` is the module-wide disabled singleton;
:class:`Tracer` records every (or every ``sample_every``-th) request
and folds completion metrics into a
:class:`~repro.obs.metrics.MetricsRegistry`.  By default spans land in
a shared :class:`~repro.obs.columnar.SpanStore` (rows in one columnar
table, materialized to :class:`~repro.obs.span.Span` trees only on
access); ``columnar=False`` restores the per-span object
:class:`~repro.obs.span.Trace` — both produce identical trees, JSONL
exports, and attribution output.
"""

from __future__ import annotations

from typing import List, Optional

from .bus import EventBus
from .columnar import ColumnarTrace, SpanStore
from .metrics import MetricsRegistry
from .span import Trace

__all__ = ["NullTracer", "Tracer", "NULL_TRACER"]


class NullTracer:
    """The disabled tracer: adopts nothing, records nothing."""

    enabled = False

    def begin_trace(self, request) -> None:
        return None

    def finish(self, request) -> None:
        return None

    def dropped(self, request, tier: str) -> None:
        return None


class Tracer:
    """Records a span tree per adopted request.

    ``sample_every`` keeps memory bounded on long runs: 1 traces every
    request, ``n`` traces every n-th begun request (the untraced ones
    run the null fast path).  ``metrics`` and ``bus`` are optional
    sinks for completion statistics and lifecycle events.
    """

    enabled = True

    def __init__(
        self,
        sample_every: int = 1,
        metrics: Optional[MetricsRegistry] = None,
        bus: Optional[EventBus] = None,
        columnar: bool = True,
    ):
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1: {sample_every}")
        self.sample_every = int(sample_every)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.bus = bus
        #: The shared columnar table (None in object-trace mode).
        self.store: Optional[SpanStore] = SpanStore() if columnar else None
        self.traces: List[Trace] = []
        self._seen = 0
        # Instruments resolved once — finish() runs per request.
        metrics = self.metrics
        self._c_started = metrics.counter("requests.started")
        self._c_completed = metrics.counter("requests.completed")
        self._c_failed = metrics.counter("requests.failed")
        self._c_dropped = metrics.counter("requests.dropped")
        self._c_retransmitted = metrics.counter("requests.retransmitted")
        self._c_tcp_retrans = metrics.counter("tcp.retransmissions")
        self._h_response_time = metrics.histogram("response_time")

    def begin_trace(self, request) -> Optional[Trace]:
        """Adopt ``request`` for tracing (or skip it when sampling)."""
        self._seen += 1
        if (self._seen - 1) % self.sample_every != 0:
            return None
        store = self.store
        if store is not None:
            trace = ColumnarTrace(store, request.rid)
        else:
            trace = Trace(request.rid)
        request.trace = trace
        self.traces.append(trace)
        self._c_started.inc()
        if self.bus is not None:
            self.bus.publish("request.started", request)
        return trace

    def dropped(self, request, tier: str) -> None:
        """One traced transmission attempt hit a full accept queue.

        Called by the client fetch loop for adopted requests only (the
        untraced ones run the null fast path), *before* the TCP backoff
        begins — so streaming consumers see drops and retransmission
        attempts as they happen, not one RTO later when the request
        finally completes or fails.
        """
        self._c_dropped.inc()
        if self.bus is not None:
            self.bus.publish("request.dropped", request)

    def finish(self, request) -> None:
        """Fold a finished traced request into metrics and the bus."""
        if request.failed:
            self._c_failed.inc()
            topic = "request.failed"
        else:
            self._c_completed.inc()
            topic = "request.completed"
            rt = request.response_time
            if rt is not None:
                self._h_response_time.observe(rt)
        if request.attempts > 1:
            self._c_retransmitted.inc()
            self._c_tcp_retrans.inc(request.attempts - 1)
        if self.bus is not None:
            self.bus.publish(topic, request)

    # -- views ------------------------------------------------------------

    def finished_traces(self) -> List[Trace]:
        """Traces whose span stack closed cleanly."""
        return [t for t in self.traces if t.finished]


#: Shared disabled-tracer singleton (the default everywhere).
NULL_TRACER = NullTracer()
