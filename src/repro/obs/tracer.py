"""Request tracers: the recording tracer and its null fast path.

Instrumentation sites never talk to the tracer on the hot path — they
check ``request.trace`` (a plain attribute, ``None`` unless a recording
tracer adopted the request at send time) and skip all span work when it
is ``None``.  That keeps the disabled-tracing overhead to one attribute
load per site and, because tracing schedules no simulation events,
guarantees byte-identical results with tracing on or off.

:data:`NULL_TRACER` is the module-wide disabled singleton;
:class:`Tracer` records every (or every ``sample_every``-th) request
into :class:`~repro.obs.span.Trace` trees and folds completion metrics
into a :class:`~repro.obs.metrics.MetricsRegistry`.
"""

from __future__ import annotations

from typing import List, Optional

from .bus import EventBus
from .metrics import MetricsRegistry
from .span import Trace

__all__ = ["NullTracer", "Tracer", "NULL_TRACER"]


class NullTracer:
    """The disabled tracer: adopts nothing, records nothing."""

    enabled = False

    def begin_trace(self, request) -> None:
        return None

    def finish(self, request) -> None:
        return None


class Tracer:
    """Records a span tree per adopted request.

    ``sample_every`` keeps memory bounded on long runs: 1 traces every
    request, ``n`` traces every n-th begun request (the untraced ones
    run the null fast path).  ``metrics`` and ``bus`` are optional
    sinks for completion statistics and lifecycle events.
    """

    enabled = True

    def __init__(
        self,
        sample_every: int = 1,
        metrics: Optional[MetricsRegistry] = None,
        bus: Optional[EventBus] = None,
    ):
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1: {sample_every}")
        self.sample_every = int(sample_every)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.bus = bus
        self.traces: List[Trace] = []
        self._seen = 0

    def begin_trace(self, request) -> Optional[Trace]:
        """Adopt ``request`` for tracing (or skip it when sampling)."""
        self._seen += 1
        if (self._seen - 1) % self.sample_every != 0:
            return None
        trace = Trace(request.rid)
        request.trace = trace
        self.traces.append(trace)
        return trace

    def finish(self, request) -> None:
        """Fold a finished traced request into metrics and the bus."""
        metrics = self.metrics
        if request.failed:
            metrics.counter("requests.failed").inc()
            topic = "request.failed"
        else:
            metrics.counter("requests.completed").inc()
            topic = "request.completed"
            rt = request.response_time
            if rt is not None:
                metrics.histogram("response_time").observe(rt)
        if request.attempts > 1:
            metrics.counter("requests.retransmitted").inc()
            metrics.counter("tcp.retransmissions").inc(
                request.attempts - 1
            )
        if self.bus is not None:
            self.bus.publish(topic, request)

    # -- views ------------------------------------------------------------

    def finished_traces(self) -> List[Trace]:
        """Traces whose span stack closed cleanly."""
        return [t for t in self.traces if t.finished]


#: Shared disabled-tracer singleton (the default everywhere).
NULL_TRACER = NullTracer()
