"""Typed spans and per-request traces.

A :class:`Trace` is the span tree of one client request: a ``request``
root span covering the whole client-perceived interval, one ``attempt``
child per transmission attempt (with ``rto_wait`` siblings for the TCP
retransmission backoff between attempts), and inside each attempt a
nested ``tier`` span per tier visit holding the ``queue_wait`` /
``service`` / ``net`` leaf spans where latency actually accrues.

Spans tile their parent exactly — sibling spans are contiguous and
non-overlapping — so summing any complete layer of the tree recovers
the client-perceived response time.  That invariant is what makes the
root-cause attribution pass (:mod:`repro.analysis.attribution`) a
simple arg-max over leaf durations, and it is property-tested in
``tests/test_obs_tracer.py``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["Span", "Trace", "SPAN_KINDS", "LEAF_KINDS"]

#: The span taxonomy (see DESIGN.md "Observability").
SPAN_KINDS = (
    "request",     # root: client send -> response (or give-up)
    "attempt",     # one transmission attempt
    "rto_wait",    # TCP retransmission backoff after a drop
    "tier",        # one tier visit (queue + service + downstream)
    "queue_wait",  # waiting for the tier's thread/connection pool
    "service",     # a processor-sharing CPU slice
    "net",         # tier-to-tier network delay
    "net_rto",     # link-level retransmission backoff inside a hop
)

#: Kinds where latency actually accrues (no nested children).
LEAF_KINDS = ("queue_wait", "service", "net", "rto_wait", "net_rto")


class Span:
    """One typed interval in a request's life, with nested children."""

    __slots__ = ("kind", "name", "start", "end", "attrs", "children")

    def __init__(
        self,
        kind: str,
        name: str,
        start: float,
        end: Optional[float] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ):
        self.kind = kind
        self.name = name
        self.start = start
        self.end = end
        self.attrs: Dict[str, Any] = attrs if attrs is not None else {}
        self.children: List["Span"] = []

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Span length in seconds (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (recursive) for JSON export."""
        out: Dict[str, Any] = {
            "kind": self.kind,
            "name": self.name,
            "start": self.start,
            "end": self.end,
        }
        if self.attrs:
            out["attrs"] = self.attrs
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.kind}:{self.name} "
            f"[{self.start:.6f}, {self.end if self.end is None else round(self.end, 6)}], "
            f"{len(self.children)} children)"
        )


class Trace:
    """The span tree of one request, built via a begin/end stack.

    ``begin``/``end`` manage *nesting* spans (request, attempt, tier);
    ``add`` records an already-closed *leaf* span as a child of the
    current innermost open span.  Instrumentation sites close their
    spans in LIFO order even on exceptions (each site owns a
    try/except), so the stack stays balanced.
    """

    __slots__ = ("rid", "root", "_stack")

    def __init__(self, rid: int):
        self.rid = rid
        self.root: Optional[Span] = None
        self._stack: List[Span] = []

    @property
    def depth(self) -> int:
        """Number of currently open spans."""
        return len(self._stack)

    @property
    def finished(self) -> bool:
        return self.root is not None and not self._stack

    def begin(self, kind: str, name: str, t: float, **attrs: Any) -> Span:
        """Open a nesting span at time ``t`` and push it."""
        span = Span(kind, name, t, attrs=attrs or None)
        if self._stack:
            self._stack[-1].children.append(span)
        elif self.root is None:
            self.root = span
        else:
            raise ValueError(
                f"trace {self.rid} already has a closed root span"
            )
        self._stack.append(span)
        return span

    def end(self, t: float, **attrs: Any) -> Span:
        """Close the innermost open span at time ``t``."""
        if not self._stack:
            raise ValueError(f"trace {self.rid} has no open span to end")
        span = self._stack.pop()
        span.end = t
        if attrs:
            span.attrs.update(attrs)
        return span

    def add(
        self, kind: str, name: str, start: float, end: float, **attrs: Any
    ) -> Span:
        """Record a closed leaf span under the current open span."""
        if not self._stack:
            raise ValueError(
                f"trace {self.rid}: add() outside any open span"
            )
        span = Span(kind, name, start, end, attrs=attrs or None)
        self._stack[-1].children.append(span)
        return span

    def walk(self) -> Iterator[Tuple[Span, int]]:
        """Yield (span, depth) pairs in pre-order."""
        if self.root is None:
            return
        stack: List[Tuple[Span, int]] = [(self.root, 0)]
        while stack:
            span, depth = stack.pop()
            yield span, depth
            for child in reversed(span.children):
                stack.append((child, depth + 1))

    def spans(self) -> List[Span]:
        """All spans in pre-order."""
        return [span for span, _depth in self.walk()]

    def leaf_durations(self) -> Dict[str, float]:
        """Total duration per leaf component.

        Keys are ``rto_wait`` (client side, one bucket) and
        ``<kind>:<name>`` for the in-system leaves, e.g.
        ``queue_wait:mysql`` or ``service:tomcat``.
        """
        out: Dict[str, float] = {}
        for span, _depth in self.walk():
            if span.kind not in LEAF_KINDS or span.end is None:
                continue
            key = (
                "rto_wait"
                if span.kind == "rto_wait"
                else f"{span.kind}:{span.name}"
            )
            out[key] = out.get(key, 0.0) + span.duration
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        n = len(self.spans())
        return f"Trace(rid={self.rid}, spans={n}, open={len(self._stack)})"
