"""Live telemetry: streaming tail quantiles, adaptive tracing, SLO alarms.

The paper's central measurement problem, turned into an online system:
millibottleneck damage is visible *only* in the latency tail (average-
based monitors see nothing), yet retaining a full trace of every
request at million-user scale is memory-infeasible.  This module closes
that gap with three cooperating pieces, all driven passively off the
:class:`~repro.obs.bus.EventBus` request-lifecycle topics — nothing
here schedules a simulation event or consumes an RNG stream, so
fixed-seed results with telemetry on are byte-identical to results
with it off (pinned in ``tests/test_determinism.py``):

* :class:`AdaptiveTracer` — records a span tree for *every* request
  (spans stage as cheap columnar rows) but *retains* only (a) a
  budget-controlled base sample, whose stride re-tunes itself each
  window to hit ``trace_budget_per_window`` retained traces, and
  (b) every request whose response time reaches the current streaming
  P99 estimate (a :class:`~repro.obs.sketch.P2Quantile` updated per
  completion), which is *promoted* to full-trace retention regardless
  of budget.  Promotion invariant: retained traces = base budget +
  promoted tail + in-flight, so memory stays bounded by budget and
  population while every tail request above the running P99 keeps its
  full span tree.
* :class:`TelemetryPipeline` — tumbling-window quantile sketches
  (:class:`~repro.obs.sketch.LogHistogram`, O(1) memory per window,
  mergeable) for end-to-end and per-tier latency, exposing live
  P50/P99/P99.9 series plus run-cumulative estimates with guaranteed
  relative accuracy; emits a :class:`WindowReport` per closed window
  to registered callbacks (the CLI's live display, the detector).
* :class:`TailSloDetector` — watches the end-to-end windowed tail and
  publishes ``slo.violation`` (tail above the SLO for ``consecutive``
  windows) and ``millibottleneck.onset`` (tail jumping a factor above
  its rolling baseline) bus topics, which
  :class:`repro.cloud.defense.MillibottleneckDefense` consumes via
  ``attach_bus`` to trigger migration on *live traced tail latency*
  instead of post-hoc utilization episodes.

:class:`LiveTelemetry` bundles the three (plus the metrics registry
and kernel self-profiler) the way :class:`repro.obs.Observability`
bundles the offline stack; ``run_rubbos(telemetry=...)`` wires it into
a run and ``python -m repro monitor <scenario>`` drives it from the
shell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .bus import EventBus, KernelProfiler
from .columnar import ColumnarTrace, SpanStore
from .metrics import MetricsRegistry
from .sketch import LogHistogram, P2Quantile
from .span import Trace
from .tracer import Tracer

__all__ = [
    "TelemetryConfig",
    "AdaptiveTracer",
    "WindowReport",
    "TelemetryPipeline",
    "TailSloDetector",
    "LiveTelemetry",
]

#: Pipeline key for the client-perceived end-to-end latency sketch.
E2E = "e2e"

#: Pipeline key for network chain-traversal latency (``net.*`` topics,
#: present only in runs with a routed inter-tier network).
NET = "net"


@dataclass(frozen=True)
class TelemetryConfig:
    """Everything the live pipeline needs, in one frozen record."""

    #: Tumbling window width (simulated seconds) for live series.
    window: float = 1.0
    #: Percentile series maintained per window and cumulatively.
    quantiles: Tuple[float, ...] = (50.0, 99.0, 99.9)
    #: Guaranteed relative accuracy of the log-bucketed sketches.
    accuracy: float = 0.01
    #: Initial base-sample stride (1/64 by default: trace every 64th).
    base_sample_every: int = 64
    #: Target base-retained traces per window; the controller re-tunes
    #: the stride each window to hit it.  None pins the stride at
    #: ``base_sample_every`` (the fixed 1/64 budget of the benchmark).
    trace_budget_per_window: Optional[int] = 8
    #: Quantile (percentile units) whose running estimate is the
    #: promotion threshold: any completion at/above it keeps its trace.
    promote_quantile: float = 99.0
    #: Completions needed before the promotion threshold arms.
    min_promote_samples: int = 100
    #: End-to-end tail SLO in seconds (None disables the detector).
    slo: Optional[float] = None
    #: Percentile the SLO applies to (must be in ``quantiles``).
    slo_quantile: float = 99.0
    #: Violating windows in a row before ``slo.violation`` fires.
    consecutive_windows: int = 2
    #: Tail-jump factor over the rolling baseline for onset detection.
    onset_factor: float = 3.0
    #: Windows in the rolling baseline median.
    baseline_windows: int = 8
    #: Minimum seconds between ``millibottleneck.onset`` emissions.
    onset_cooldown: float = 2.0
    #: Span storage flavor (see :mod:`repro.obs.columnar`).
    columnar: bool = True
    #: Kernel self-profiler stride.
    kernel_sample_every: int = 1024

    def __post_init__(self):
        if self.window <= 0:
            raise ValueError(f"window must be positive: {self.window}")
        if self.base_sample_every < 1:
            raise ValueError(
                f"base_sample_every must be >= 1: {self.base_sample_every}"
            )
        if (
            self.trace_budget_per_window is not None
            and self.trace_budget_per_window < 1
        ):
            raise ValueError(
                "trace_budget_per_window must be >= 1 or None: "
                f"{self.trace_budget_per_window}"
            )
        if self.slo is not None and self.slo_quantile not in self.quantiles:
            raise ValueError(
                f"slo_quantile {self.slo_quantile} must be one of the "
                f"tracked quantiles {self.quantiles}"
            )


class AdaptiveTracer(Tracer):
    """Budget-driven tracer with slow-request reservoir promotion.

    Every begun request gets a working span tree (recording costs a few
    list appends per span — the price of being *able* to keep any tail
    request), but at completion only two classes are retained:

    * **base sample** — every ``stride``-th finished request; when a
      ``trace_budget_per_window`` is set, the stride is re-tuned at
      each window boundary to ``round(finished / budget)``, so the
      retained base rate tracks the configured budget whatever the
      offered load does;
    * **promoted** — any request whose response time reaches the
      current streaming P99 estimate (plus every failed request: the
      give-up path *is* the extreme tail).  Promotion ignores the
      budget by design — under attack the tail inflates and the
      retained trace rate rises with it, which is exactly the signal
      worth paying memory for.

    Discarded traces never enter the span store (see
    :meth:`repro.obs.columnar.SpanStore.adopt`), so their staged rows
    are garbage the moment the request record drops its reference.
    """

    def __init__(
        self,
        config: Optional[TelemetryConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        bus: Optional[EventBus] = None,
    ):
        config = config if config is not None else TelemetryConfig()
        super().__init__(
            sample_every=1,
            metrics=metrics,
            bus=bus,
            columnar=config.columnar,
        )
        self.config = config
        self.stride = config.base_sample_every
        #: Running P99 (or configured quantile) estimator — the
        #: promotion threshold once ``min_promote_samples`` arrive.
        self.p2 = P2Quantile(config.promote_quantile / 100.0)
        self.base_retained = 0
        self.promoted = 0
        self.discarded = 0
        self._finished = 0
        self._window_end = config.window
        self._finished_in_window = 0
        metrics = self.metrics
        self._c_base = metrics.counter("telemetry.base_retained")
        self._c_promoted = metrics.counter("telemetry.promoted")
        self._c_discarded = metrics.counter("telemetry.discarded")

    @property
    def threshold(self) -> Optional[float]:
        """The armed promotion threshold (None while warming up)."""
        if self.p2.count < self.config.min_promote_samples:
            return None
        return self.p2.estimate

    def begin_trace(self, request):
        """Adopt *every* request; retention is decided at finish."""
        self._seen += 1
        store = self.store
        if store is not None:
            trace = ColumnarTrace(store, request.rid, register=False)
        else:
            trace = Trace(request.rid)
        request.trace = trace
        self._c_started.inc()
        if self.bus is not None:
            self.bus.publish("request.started", request)
        return trace

    def finish(self, request) -> None:
        """Decide retention, update the threshold, then publish."""
        now = request.t_done
        if now is not None and now >= self._window_end:
            self._retune(now)
        self._finished += 1
        self._finished_in_window += 1
        base = (self._finished - 1) % self.stride == 0
        rt = request.response_time
        threshold = self.threshold
        promoted = request.failed or (
            rt is not None and threshold is not None and rt >= threshold
        )
        if base or promoted:
            trace = request.trace
            self.traces.append(trace)
            if self.store is not None:
                self.store.adopt(trace)
            if promoted:
                self.promoted += 1
                self._c_promoted.inc()
            else:
                self.base_retained += 1
                self._c_base.inc()
        else:
            request.trace = None
            self.discarded += 1
            self._c_discarded.inc()
        if rt is not None and not request.failed:
            self.p2.observe(rt)
        super().finish(request)

    def _retune(self, now: float) -> None:
        """Window rollover: adapt the base stride to the budget."""
        budget = self.config.trace_budget_per_window
        if budget is not None and self._finished_in_window:
            self.stride = max(
                1, round(self._finished_in_window / budget)
            )
        self._finished_in_window = 0
        window = self.config.window
        # Skip empty windows in one step (no completions, no budget
        # evidence to retune on).
        periods = int((now - self._window_end) / window) + 1
        self._window_end += periods * window

    @property
    def retained(self) -> int:
        """Traces kept so far (base sample + promoted tail)."""
        return self.base_retained + self.promoted


@dataclass
class WindowReport:
    """One closed telemetry window, ready for display or detection."""

    index: int
    start: float
    end: float
    #: Requests completed / failed / dropped-attempts in the window.
    completed: int = 0
    failed: int = 0
    dropped: int = 0
    #: Network messages discarded by a queue-chain stage in the window
    #: (0 unless the run routes RPCs through ``repro.net``).
    net_dropped: int = 0
    #: key -> quantile (percentile units) -> estimate; empty keys
    #: (no observations in the window) are absent.
    quantiles: Dict[str, Dict[float, float]] = field(default_factory=dict)
    #: key -> observations folded into this window's sketch.
    samples: Dict[str, int] = field(default_factory=dict)
    #: Traces retained by the adaptive tracer during the window.
    base_retained: int = 0
    promoted: int = 0
    #: Base-sample stride in effect when the window closed.
    stride: int = 0

    def quantile(self, q: float, key: str = E2E) -> Optional[float]:
        values = self.quantiles.get(key)
        return None if values is None else values.get(q)


class TelemetryPipeline:
    """Windowed + cumulative latency sketches over bus lifecycle topics.

    Subscribes to ``request.completed`` / ``request.failed`` /
    ``request.dropped`` and maintains one :class:`LogHistogram` per key
    (end-to-end plus each tier) per tumbling window, folding closed
    windows into run-cumulative sketches.  Windows close lazily when an
    observation lands past their end (plus a final :meth:`flush` at the
    horizon), so the pipeline never schedules simulation events — the
    live path costs one bucket increment per key per completion.
    """

    def __init__(
        self,
        config: Optional[TelemetryConfig] = None,
        bus: Optional[EventBus] = None,
        tracer: Optional[AdaptiveTracer] = None,
    ):
        self.config = config if config is not None else TelemetryConfig()
        self.bus = bus if bus is not None else EventBus()
        self.tracer = tracer
        self.tier_names: Tuple[str, ...] = ()
        #: Closed windows, oldest first.
        self.reports: List[WindowReport] = []
        #: key -> run-cumulative sketch (all closed + open windows).
        self.cumulative: Dict[str, LogHistogram] = {}
        self.on_window: List[Callable[[WindowReport], None]] = []
        self._window_index = 0
        self._window_hists: Dict[str, LogHistogram] = {}
        self._completed = 0
        self._failed = 0
        self._dropped = 0
        self._net_dropped = 0
        self._tracer_base_seen = 0
        self._tracer_promoted_seen = 0
        self._attached = False

    # -- wiring -----------------------------------------------------------

    def attach(self, app=None) -> "TelemetryPipeline":
        """Subscribe to the bus (and learn tier names from ``app``)."""
        if self._attached:
            return self
        self._attached = True
        if app is not None:
            self.tier_names = tuple(tier.name for tier in app.tiers)
        self.bus.subscribe("request.completed", self._on_completed)
        self.bus.subscribe("request.failed", self._on_failed)
        self.bus.subscribe("request.dropped", self._on_dropped)
        # The whole net.* family: delivered transfers feed the NET
        # latency sketch, stage drops are tallied per window.
        self.bus.subscribe("net.*", self._on_net)
        return self

    # -- window machinery -------------------------------------------------

    def _window_bounds(self, index: int) -> Tuple[float, float]:
        w = self.config.window
        return index * w, (index + 1) * w

    def _hist(self, key: str) -> LogHistogram:
        hist = self._window_hists.get(key)
        if hist is None:
            hist = self._window_hists[key] = LogHistogram(
                self.config.accuracy
            )
        return hist

    def _close_through(self, t: float) -> None:
        """Close every window whose end is at or before ``t``."""
        while True:
            start, end = self._window_bounds(self._window_index)
            if t < end:
                return
            self._close_window(start, end)

    def _close_window(self, start: float, end: float) -> None:
        report = WindowReport(
            index=self._window_index,
            start=start,
            end=end,
            completed=self._completed,
            failed=self._failed,
            dropped=self._dropped,
            net_dropped=self._net_dropped,
        )
        for key, hist in self._window_hists.items():
            if hist.count == 0:
                continue
            report.samples[key] = hist.count
            report.quantiles[key] = {
                q: hist.quantile(q) for q in self.config.quantiles
            }
            cumulative = self.cumulative.get(key)
            if cumulative is None:
                cumulative = self.cumulative[key] = LogHistogram(
                    self.config.accuracy
                )
            cumulative.merge(hist)
        tracer = self.tracer
        if tracer is not None:
            report.base_retained = (
                tracer.base_retained - self._tracer_base_seen
            )
            report.promoted = tracer.promoted - self._tracer_promoted_seen
            report.stride = tracer.stride
            self._tracer_base_seen = tracer.base_retained
            self._tracer_promoted_seen = tracer.promoted
        self.reports.append(report)
        self._window_hists = {}
        self._completed = self._failed = self._dropped = 0
        self._net_dropped = 0
        self._window_index += 1
        for callback in self.on_window:
            callback(report)

    def flush(self, until: float) -> None:
        """Close all windows ending at or before ``until`` (run end)."""
        self._close_through(until)

    # -- lifecycle consumers ----------------------------------------------

    def _on_completed(self, request) -> None:
        t = request.t_done
        self._close_through(t)
        self._completed += 1
        rt = request.response_time
        if rt is not None:
            self._hist(E2E).observe(rt)
        for tier in self.tier_names:
            tier_rt = request.tier_response_time(tier)
            if tier_rt is not None:
                self._hist(tier).observe(tier_rt)

    def _on_failed(self, request) -> None:
        self._close_through(request.t_done)
        self._failed += 1

    def _on_dropped(self, request) -> None:
        # Drops arrive mid-request (before any completion timestamp);
        # tally only — the window closes on the next completion.
        self._dropped += 1

    def _on_net(self, event) -> None:
        if event.kind == "delivered":
            self._close_through(event.t)
            self._hist(NET).observe(event.latency)
        elif event.kind == "dropped":
            self._net_dropped += 1

    # -- queries ----------------------------------------------------------

    def estimate(self, q: float, key: str = E2E) -> Optional[float]:
        """Cumulative quantile estimate over all *closed* windows."""
        hist = self.cumulative.get(key)
        if hist is None or hist.count == 0:
            return None
        return hist.quantile(q)

    def series(self, q: float, key: str = E2E) -> List[Tuple[float, float]]:
        """Live (window end, estimate) points for one quantile."""
        out = []
        for report in self.reports:
            value = report.quantile(q, key)
            if value is not None:
                out.append((report.end, value))
        return out

    def snapshot(self) -> dict:
        """Cumulative sketch snapshots per key."""
        return {
            key: hist.snapshot(self.config.quantiles)
            for key, hist in sorted(self.cumulative.items())
        }


class TailSloDetector:
    """Turns windowed tail estimates into defense-consumable topics.

    Registered as a :class:`TelemetryPipeline` window callback.  Two
    signals, both on the end-to-end tail:

    * ``slo.violation`` — the windowed ``slo_quantile`` estimate sits
      at/above ``slo`` for ``consecutive_windows`` windows in a row;
      emitted once per violating window from then on (each emission is
      one "episode" to :class:`repro.cloud.defense
      .MillibottleneckDefense`).
    * ``millibottleneck.onset`` — the windowed tail jumps to at least
      ``onset_factor`` times the rolling median of the previous
      ``baseline_windows`` windows: the transient-saturation signature,
      caught at window granularity instead of post-hoc.
    """

    def __init__(
        self, config: TelemetryConfig, bus: EventBus
    ):
        if config.slo is None:
            raise ValueError("TailSloDetector needs config.slo set")
        self.config = config
        self.bus = bus
        #: (window end, estimate) of every emitted violation.
        self.violations: List[Tuple[float, float]] = []
        #: (window end, estimate, baseline) of every emitted onset.
        self.onsets: List[Tuple[float, float, float]] = []
        self._streak = 0
        self._recent: List[float] = []
        self._last_onset = float("-inf")

    def on_window(self, report: WindowReport) -> None:
        config = self.config
        value = report.quantile(config.slo_quantile)
        if value is None:
            # An empty window carries no tail evidence either way.
            return
        baseline = self._baseline()
        if (
            baseline is not None
            and value >= config.onset_factor * baseline
            and report.end - self._last_onset >= config.onset_cooldown
        ):
            self._last_onset = report.end
            self.onsets.append((report.end, value, baseline))
            self.bus.publish(
                "millibottleneck.onset",
                {
                    "time": report.end,
                    "window": report.index,
                    "estimate": value,
                    "baseline": baseline,
                    "quantile": config.slo_quantile,
                },
            )
        if value >= config.slo:
            self._streak += 1
            if self._streak >= config.consecutive_windows:
                self.violations.append((report.end, value))
                self.bus.publish(
                    "slo.violation",
                    {
                        "time": report.end,
                        "window": report.index,
                        "estimate": value,
                        "slo": config.slo,
                        "quantile": config.slo_quantile,
                        "streak": self._streak,
                    },
                )
        else:
            self._streak = 0
        self._recent.append(value)
        if len(self._recent) > config.baseline_windows:
            del self._recent[0]

    def _baseline(self) -> Optional[float]:
        """Median windowed tail over the trailing baseline windows."""
        recent = self._recent
        if len(recent) < self.config.baseline_windows:
            return None
        ordered = sorted(recent)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return 0.5 * (ordered[mid - 1] + ordered[mid])


class LiveTelemetry:
    """The live-telemetry stack, bundled and wired like Observability.

    One bus + metrics registry + adaptive tracer + streaming pipeline
    (+ tail-SLO detector when ``config.slo`` is set) + kernel
    self-profiler.  ``attach`` hooks it into a simulator/application
    pair; ``finalize`` flushes trailing windows at the horizon.
    """

    def __init__(self, config: Optional[TelemetryConfig] = None):
        self.config = config if config is not None else TelemetryConfig()
        self.bus = EventBus()
        self.metrics = MetricsRegistry()
        self.tracer = AdaptiveTracer(
            self.config, metrics=self.metrics, bus=self.bus
        )
        self.pipeline = TelemetryPipeline(
            self.config, bus=self.bus, tracer=self.tracer
        )
        self.detector: Optional[TailSloDetector] = None
        if self.config.slo is not None:
            self.detector = TailSloDetector(self.config, self.bus)
            self.pipeline.on_window.append(self.detector.on_window)
        self.kernel = KernelProfiler(
            sample_every=self.config.kernel_sample_every,
            metrics=self.metrics,
        )

    def attach(self, sim, app=None) -> "LiveTelemetry":
        sim.attach_hooks(self.kernel)
        if app is not None:
            app.tracer = self.tracer
        self.pipeline.attach(app)
        return self

    def finalize(self, until: float) -> "LiveTelemetry":
        """Close the windows still open at the simulation horizon."""
        self.pipeline.flush(until)
        return self

    def report(self) -> dict:
        tracer = self.tracer
        out = {
            "kernel": self.kernel.summary(),
            "sketches": self.pipeline.snapshot(),
            "windows": len(self.pipeline.reports),
            "traces": {
                "retained": tracer.retained,
                "base": tracer.base_retained,
                "promoted": tracer.promoted,
                "discarded": tracer.discarded,
                "stride": tracer.stride,
                "threshold": tracer.threshold,
            },
        }
        if self.detector is not None:
            out["slo"] = {
                "violations": len(self.detector.violations),
                "onsets": len(self.detector.onsets),
            }
        return out
