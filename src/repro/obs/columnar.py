"""Columnar span storage: staged rows instead of per-span objects.

At population scale the object tracer dominates traced-run cost: a 60 s
run of 10k users creates ~1M :class:`~repro.obs.span.Span` objects plus
a children list each, and the allocation/GC traffic roughly doubles the
wall time of the whole simulation.  This module stores every span of a
run as one *row* — (kind code, interned name id, start, end, parent
row) plus a sparse attribute side-table — and materializes
:class:`~repro.obs.span.Span` trees lazily, only for the traces an
exporter or analysis actually touches.

Design notes:

* **The append path is one list-extend per span.**  Instrumentation
  sites run inside the simulation hot loop, so each trace stages its
  rows in a single flat list with a stride of :data:`ROW_STRIDE` slots
  (``begin``/``add`` extend it by one 5-slot row; ``end`` mutates one
  slot in place) and does no numpy work at all.  One flat list per
  trace instead of one list per span keeps the retained object count
  at the number of *traces*, not spans — allocator traffic, cyclic-GC
  scan work, and walk locality all scale with 10k traces rather than
  1M rows.  Parent references are trace-local (the row's base offset),
  which keeps the hot path free of any shared-table indirection; the
  :class:`SpanStore` owns what is genuinely shared — the interned name
  table and the trace registry — and :meth:`SpanStore.columns` packs
  every staged row into one structured array (:data:`SPAN_DTYPE`, with
  globalized parent indexes and the owning request id) on demand, in
  bulk.  Python floats are the source of truth — materialized trees
  carry the exact values the instrumentation recorded, so JSONL export
  is byte-identical to the object tracer's.
* **Row order is pre-order.**  Every span row is appended after its
  parent's row and after all rows of earlier siblings' subtrees, so a
  trace's row sequence is exactly the pre-order walk of its finished
  tree (the first row is always the root).
  :meth:`ColumnarTrace.leaf_durations` exploits this to fold leaf
  durations straight off the rows — same keys, same insertion order,
  same sums as ``Trace.leaf_durations`` — without building a single
  ``Span``.
* **Open spans have ``end is None``** (``NaN`` in the packed array).
  A truncated trace (simulation horizon hit mid-request) materializes
  with its open spans' ``end`` set to ``None``, exactly like the
  object tracer would leave them.

``ColumnarTrace`` is API-compatible with :class:`~repro.obs.span.Trace`
(``begin``/``end``/``add``/``root``/``walk``/``spans``/
``leaf_durations``/``finished``/``depth``), so exporters and
:mod:`repro.analysis.attribution` work unchanged; equivalence is
property-tested in ``tests/test_obs_columnar.py``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from .span import LEAF_KINDS, SPAN_KINDS, Span

__all__ = ["SpanStore", "ColumnarTrace", "SPAN_DTYPE", "ROW_STRIDE"]

#: The packed layout :meth:`SpanStore.columns` produces.
SPAN_DTYPE = np.dtype(
    [
        ("kind", np.uint8),      # index into SPAN_KINDS
        ("name_id", np.int32),   # index into SpanStore.names
        ("start", np.float64),
        ("end", np.float64),     # NaN while the span is open
        ("parent", np.int32),    # parent row (global), -1 for a root
        ("rid", np.int64),       # owning request id
    ]
)

#: Slot offsets of one staged row inside a trace's flat ``data`` list.
#: Staged rows carry the *parent row's base offset* (or -1); ``rid``
#: lives on the trace, and parents are globalized only when
#: :meth:`SpanStore.columns` packs.
KIND, NAME_ID, START, END, PARENT = range(5)

#: Slots per staged row.
ROW_STRIDE = 5

_KIND_CODES = {kind: code for code, kind in enumerate(SPAN_KINDS)}
_LEAF_CODES = frozenset(_KIND_CODES[kind] for kind in LEAF_KINDS)
_RTO_CODE = _KIND_CODES["rto_wait"]


class SpanStore:
    """The shared backing of every trace in one run.

    Owns the interned span-name table and the registry of traces (in
    creation order); the rows themselves are staged on the traces and
    flattened here by :meth:`columns`.
    """

    __slots__ = ("traces", "names", "_name_codes")

    def __init__(self) -> None:
        #: Every :class:`ColumnarTrace` backed by this store, in
        #: creation order — the packing order of :meth:`columns`.
        self.traces: List["ColumnarTrace"] = []
        #: Interned span names; ``NAME_ID`` slots index into this.
        self.names: List[str] = []
        self._name_codes: Dict[str, int] = {}

    def __len__(self) -> int:
        return sum(len(trace.data) for trace in self.traces) // ROW_STRIDE

    def intern(self, name: str) -> int:
        """The stable id of ``name``, assigning one on first sight."""
        nid = self._name_codes.get(name)
        if nid is None:
            nid = len(self.names)
            self._name_codes[name] = nid
            self.names.append(name)
        return nid

    def adopt(self, trace: "ColumnarTrace") -> None:
        """Register a trace created with ``register=False``.

        The adaptive tracer (:mod:`repro.obs.streaming`) records every
        request speculatively but *retains* only a budgeted sample plus
        the promoted tail: traces start unregistered (their rows stage
        on the trace object only) and enter the store — and therefore
        :meth:`columns` packing — at the moment the retention decision
        keeps them.  Unretained traces are simply dropped on the floor
        and garbage-collected, which is what bounds traced memory at
        full-population scale.
        """
        if trace.store is not self:
            raise ValueError("trace belongs to a different store")
        self.traces.append(trace)

    def columns(self) -> np.ndarray:
        """Pack every staged row into one structured array (copies).

        Rows appear trace by trace in creation order, pre-order within
        each trace; parent indexes are globalized against that order.
        """
        out = np.empty(len(self), dtype=SPAN_DTYPE)
        i = 0
        for trace in self.traces:
            offset = i
            rid = trace.rid
            data = trace.data
            for base in range(0, len(data), ROW_STRIDE):
                end = data[base + END]
                parent = data[base + PARENT]
                out[i] = (
                    data[base + KIND],
                    data[base + NAME_ID],
                    data[base + START],
                    np.nan if end is None else end,
                    parent if parent < 0 else parent // ROW_STRIDE + offset,
                    rid,
                )
                i += 1
        return out

    def open_rows(self) -> List[int]:
        """Global rows of spans never closed (truncated at the horizon),
        indexed consistently with :meth:`columns` ordering."""
        out: List[int] = []
        i = 0
        for trace in self.traces:
            data = trace.data
            for base in range(0, len(data), ROW_STRIDE):
                if data[base + END] is None:
                    out.append(i)
                i += 1
        return out


class ColumnarTrace:
    """One request's span tree, staged as stride-5 rows in a flat list.

    Drop-in compatible with :class:`~repro.obs.span.Trace`; the tree
    view (``root``/``walk``/``spans``) is materialized on first access
    and cached once the trace is finished.
    """

    __slots__ = (
        "store", "rid", "data", "attrs", "_stack", "_tree", "_name_codes"
    )

    def __init__(self, store: SpanStore, rid: int, register: bool = True):
        self.store = store
        self.rid = rid
        #: Flat staged rows, :data:`ROW_STRIDE` slots each
        #: (``kind, name_id, start, end, parent``) in creation (= pre-)
        #: order; the row at offset 0 is the root.
        self.data: List[Any] = []
        #: Sparse side-table: row base offset -> attrs dict (created on
        #: first use; most spans carry no attributes).
        self.attrs: Optional[Dict[int, Dict[str, Any]]] = None
        self._stack: List[int] = []
        self._tree: Optional[Span] = None
        # Direct ref to the shared intern table: one dict probe on the
        # hot path instead of two attribute hops through the store.
        self._name_codes = store._name_codes
        if register:
            store.traces.append(self)

    @property
    def depth(self) -> int:
        """Number of currently open spans."""
        return len(self._stack)

    @property
    def finished(self) -> bool:
        return bool(self.data) and not self._stack

    def __len__(self) -> int:
        return len(self.data) // ROW_STRIDE

    # -- recording (hot path) ------------------------------------------

    def begin(self, kind: str, name: str, t: float, **attrs: Any) -> int:
        """Open a nesting span at time ``t``; returns its base offset."""
        stack = self._stack
        data = self.data
        if stack:
            parent = stack[-1]
        elif not data:
            parent = -1
        else:
            raise ValueError(
                f"trace {self.rid} already has a closed root span"
            )
        nid = self._name_codes.get(name)
        if nid is None:
            nid = self.store.intern(name)
        base = len(data)
        data.extend((_KIND_CODES[kind], nid, t, None, parent))
        if attrs:
            table = self.attrs
            if table is None:
                table = self.attrs = {}
            table[base] = attrs
        stack.append(base)
        return base

    def end(self, t: float, **attrs: Any) -> int:
        """Close the innermost open span at time ``t``."""
        stack = self._stack
        if not stack:
            raise ValueError(f"trace {self.rid} has no open span to end")
        base = stack.pop()
        self.data[base + END] = t
        if attrs:
            table = self.attrs
            if table is None:
                table = self.attrs = {}
            existing = table.get(base)
            if existing is None:
                table[base] = attrs
            else:
                existing.update(attrs)
        return base

    def add(
        self, kind: str, name: str, start: float, end: float, **attrs: Any
    ) -> int:
        """Record a closed leaf span under the current open span."""
        stack = self._stack
        if not stack:
            raise ValueError(
                f"trace {self.rid}: add() outside any open span"
            )
        nid = self._name_codes.get(name)
        if nid is None:
            nid = self.store.intern(name)
        data = self.data
        base = len(data)
        data.extend((_KIND_CODES[kind], nid, start, end, stack[-1]))
        if attrs:
            table = self.attrs
            if table is None:
                table = self.attrs = {}
            table[base] = attrs
        return base

    # -- tree views (lazy) ---------------------------------------------

    def _materialize(self) -> Optional[Span]:
        data = self.data
        attrs = self.attrs
        names = self.store.names
        spans: Dict[int, Span] = {}
        root: Optional[Span] = None
        for base in range(0, len(data), ROW_STRIDE):
            span = Span(
                SPAN_KINDS[data[base + KIND]],
                names[data[base + NAME_ID]],
                data[base + START],
                data[base + END],
                attrs=None if attrs is None else attrs.get(base),
            )
            parent = data[base + PARENT]
            if parent < 0:
                root = span
            else:
                spans[parent].children.append(span)
            spans[base] = span
        return root

    @property
    def root(self) -> Optional[Span]:
        """The materialized span tree (cached once finished)."""
        if self._tree is not None:
            return self._tree
        tree = self._materialize()
        if self.finished:
            self._tree = tree
        return tree

    def walk(self) -> Iterator[Tuple[Span, int]]:
        """Yield (span, depth) pairs in pre-order."""
        root = self.root
        if root is None:
            return
        stack: List[Tuple[Span, int]] = [(root, 0)]
        while stack:
            span, depth = stack.pop()
            yield span, depth
            for child in reversed(span.children):
                stack.append((child, depth + 1))

    def spans(self) -> List[Span]:
        """All spans in pre-order."""
        return [span for span, _depth in self.walk()]

    def leaf_durations(self) -> Dict[str, float]:
        """Total duration per leaf component, straight off the rows.

        Row order is pre-order, so keys appear in the same order (and
        with the same sums) as ``Trace.leaf_durations`` on the
        equivalent object trace.
        """
        data = self.data
        names = self.store.names
        out: Dict[str, float] = {}
        for base in range(0, len(data), ROW_STRIDE):
            kind = data[base]
            if kind not in _LEAF_CODES:
                continue
            end = data[base + END]
            if end is None:
                continue
            key = (
                "rto_wait"
                if kind == _RTO_CODE
                else f"{SPAN_KINDS[kind]}:{names[data[base + NAME_ID]]}"
            )
            duration = end - data[base + START]
            if key in out:
                out[key] += duration
            else:
                out[key] = duration
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ColumnarTrace(rid={self.rid}, spans={len(self)}, "
            f"open={len(self._stack)})"
        )
