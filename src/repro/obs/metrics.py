"""Counters, gauges, and a streaming percentile sketch.

The metrics registry is the numeric half of the observability layer:
cheap monotone counters, last-value gauges with min/max watermarks, and
:class:`StreamingHistogram` — a fixed-memory reservoir sketch (Vitter's
algorithm R) that supports percentile queries over an unbounded stream
without retaining it.  Numpy only; the reservoir's replacement RNG is
seeded at construction so snapshots are deterministic run-to-run.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

import numpy as np

__all__ = ["Counter", "Gauge", "StreamingHistogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter increment must be >= 0: {n}")
        self.value += n

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A last-value metric with min/max watermarks."""

    __slots__ = ("name", "value", "low", "high", "updates")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None
        self.low = float("inf")
        self.high = float("-inf")
        self.updates = 0

    def set(self, value: float) -> None:
        value = float(value)
        self.value = value
        self.low = min(self.low, value)
        self.high = max(self.high, value)
        self.updates += 1

    def snapshot(self) -> dict:
        return {
            "type": "gauge",
            "value": self.value,
            "min": None if self.updates == 0 else self.low,
            "max": None if self.updates == 0 else self.high,
            "updates": self.updates,
        }


class StreamingHistogram:
    """Reservoir-sampled distribution sketch with percentile queries.

    Keeps at most ``capacity`` samples; once full, each new observation
    replaces a uniformly random kept one (algorithm R), so the reservoir
    stays a uniform sample of the whole stream.  Exact count/sum/min/max
    are tracked outside the reservoir.
    """

    def __init__(self, capacity: int = 4096, seed: int = 0):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        self.capacity = int(capacity)
        self._buf = np.empty(self.capacity, dtype=float)
        self._rng = np.random.default_rng(seed)
        self.count = 0
        self.total = 0.0
        self.low = float("inf")
        self.high = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        if self.count < self.capacity:
            self._buf[self.count] = value
        else:
            j = int(self._rng.integers(0, self.count + 1))
            if j < self.capacity:
                self._buf[j] = value
        self.count += 1
        self.total += value
        self.low = min(self.low, value)
        self.high = max(self.high, value)

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("empty histogram")
        return self.total / self.count

    def percentile(
        self, q: Union[float, Iterable[float]]
    ) -> Union[float, List[float]]:
        """Percentile estimate(s) from the reservoir (q in [0, 100])."""
        if self.count == 0:
            raise ValueError("empty histogram")
        sample = self._buf[: min(self.count, self.capacity)]
        result = np.percentile(sample, q)
        if np.ndim(result) == 0:
            return float(result)
        return [float(v) for v in result]

    def snapshot(self, percentiles=(50.0, 95.0, 99.0)) -> dict:
        out = {
            "type": "histogram",
            "count": self.count,
            "sample_size": min(self.count, self.capacity),
        }
        if self.count:
            out["mean"] = self.mean
            out["min"] = self.low
            out["max"] = self.high
            values = self.percentile(list(percentiles))
            out.update(
                {f"p{p:g}": v for p, v in zip(percentiles, values)}
            )
        return out


class MetricsRegistry:
    """Named metrics, created on first use (Prometheus-client style)."""

    def __init__(self):
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, cls, factory):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, capacity: int = 4096, seed: int = 0
    ) -> StreamingHistogram:
        return self._get(
            name,
            StreamingHistogram,
            lambda: StreamingHistogram(capacity, seed),
        )

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __getitem__(self, name: str):
        return self._metrics[name]

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def snapshot(self) -> Dict[str, dict]:
        """One nested dict with every metric's current state."""
        return {
            name: self._metrics[name].snapshot()
            for name in self.names()
        }
