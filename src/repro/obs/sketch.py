"""Streaming quantile sketches: O(1)-memory tail estimators.

The paper's thesis is that millibottleneck damage lives *only* in the
latency tail, so live monitoring has to answer percentile queries over
an unbounded completion stream without retaining it.  Two sketches,
complementary roles:

* :class:`P2Quantile` — Jain & Chlamtac's P² marker algorithm: five
  markers per tracked quantile, updated with a handful of float ops
  per observation.  This is the *running* estimator the adaptive
  tracer consults on every request completion to decide promotion
  (see :mod:`repro.obs.streaming`) — cheap enough for the per-request
  hot path, no bucket walk, no window boundary lag.
* :class:`LogHistogram` — a DDSketch-style log-bucketed histogram with
  a *guaranteed* relative accuracy: every value lands in the bucket
  ``ceil(log_gamma(v))`` where ``gamma = (1 + a) / (1 - a)``, so any
  quantile read back from bucket representatives is within relative
  error ``a`` of the exact sample quantile.  Buckets are counts in a
  dict, so memory is O(log(max/min) / a) regardless of stream length,
  and two histograms merge by adding counts — which is how the
  telemetry pipeline folds per-window sketches into run-cumulative
  estimates (`repro.obs.streaming.TelemetryPipeline`).

Both are deterministic (no RNG, unlike the reservoir-sampled
:class:`~repro.obs.metrics.StreamingHistogram`) and observation-order
dependent only in the ways the algorithms define, so fixed-seed runs
produce identical telemetry byte for byte.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Union

__all__ = ["P2Quantile", "LogHistogram"]


class P2Quantile:
    """P² estimator of one quantile (Jain & Chlamtac 1985).

    ``q`` is the target quantile in (0, 1), e.g. ``0.99``.  The first
    five observations initialize the markers exactly; after that each
    observation adjusts marker heights with the piecewise-parabolic
    (P²) interpolation formula.  :attr:`estimate` is exact until five
    observations have arrived (it falls back to the sorted buffer).
    """

    __slots__ = ("q", "count", "_heights", "_positions", "_desired", "_rates")

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1): {q}")
        self.q = float(q)
        self.count = 0
        #: Marker heights (the first five observations until warm).
        self._heights: List[float] = []
        # 1-based marker positions and their desired counterparts.
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [
            1.0,
            1.0 + 2.0 * q,
            1.0 + 4.0 * q,
            3.0 + 2.0 * q,
            5.0,
        ]
        self._rates = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        heights = self._heights
        if self.count <= 5:
            heights.append(value)
            heights.sort()
            return
        positions = self._positions
        # Locate the cell k with heights[k] <= value < heights[k+1].
        if value < heights[0]:
            heights[0] = value
            k = 0
        elif value >= heights[4]:
            heights[4] = value
            k = 3
        else:
            k = 3
            for i in range(1, 4):
                if value < heights[i]:
                    k = i - 1
                    break
        for i in range(k + 1, 5):
            positions[i] += 1.0
        desired = self._desired
        for i in range(5):
            desired[i] += self._rates[i]
        # Adjust the three interior markers toward their desired spots.
        for i in (1, 2, 3):
            delta = desired[i] - positions[i]
            if (delta >= 1.0 and positions[i + 1] - positions[i] > 1.0) or (
                delta <= -1.0 and positions[i - 1] - positions[i] < -1.0
            ):
                step = 1.0 if delta > 0 else -1.0
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                positions[i] += step


    def _parabolic(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step)
            * (h[i + 1] - h[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step)
            * (h[i] - h[i - 1])
            / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (n[j] - n[i])

    @property
    def estimate(self) -> Optional[float]:
        """Current quantile estimate (None before any observation)."""
        count = self.count
        if count == 0:
            return None
        heights = self._heights
        if count <= 5:
            # Exact from the sorted warm-up buffer (nearest rank).
            rank = max(0, min(count - 1, math.ceil(self.q * count) - 1))
            return heights[rank]
        return heights[2]


class LogHistogram:
    """Log-bucketed histogram with guaranteed relative accuracy.

    ``relative_accuracy`` bounds the error of every quantile estimate:
    with ``a = relative_accuracy`` and ``gamma = (1 + a) / (1 - a)``,
    value ``v`` lands in bucket ``ceil(log_gamma(v))`` and is read back
    as the bucket representative ``2 * gamma^i / (gamma + 1)``, which
    is within ``a * v`` of any value the bucket can hold.  Values at or
    below ``min_value`` collapse into a dedicated zero bucket (response
    times are positive, so it only catches degenerate zeros).

    Count/sum/min/max are tracked exactly; ``merge`` adds bucket counts
    (same-accuracy sketches only), making windows foldable into
    cumulative estimates.
    """

    __slots__ = (
        "relative_accuracy",
        "min_value",
        "_gamma_log",
        "_gamma",
        "buckets",
        "zero_count",
        "count",
        "total",
        "low",
        "high",
    )

    def __init__(self, relative_accuracy: float = 0.01, min_value: float = 1e-9):
        if not 0.0 < relative_accuracy < 1.0:
            raise ValueError(
                f"relative_accuracy must be in (0, 1): {relative_accuracy}"
            )
        if min_value <= 0.0:
            raise ValueError(f"min_value must be positive: {min_value}")
        self.relative_accuracy = float(relative_accuracy)
        self.min_value = float(min_value)
        self._gamma = (1.0 + relative_accuracy) / (1.0 - relative_accuracy)
        self._gamma_log = math.log(self._gamma)
        #: bucket index -> observation count.
        self.buckets: Dict[int, int] = {}
        self.zero_count = 0
        self.count = 0
        self.total = 0.0
        self.low = float("inf")
        self.high = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.low:
            self.low = value
        if value > self.high:
            self.high = value
        if value <= self.min_value:
            self.zero_count += 1
            return
        index = math.ceil(math.log(value) / self._gamma_log)
        buckets = self.buckets
        buckets[index] = buckets.get(index, 0) + 1

    def merge(self, other: "LogHistogram") -> None:
        """Fold ``other``'s counts into this sketch (same accuracy)."""
        if other.relative_accuracy != self.relative_accuracy:
            raise ValueError(
                "cannot merge sketches with different accuracies: "
                f"{self.relative_accuracy} vs {other.relative_accuracy}"
            )
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n
        self.zero_count += other.zero_count
        self.count += other.count
        self.total += other.total
        self.low = min(self.low, other.low)
        self.high = max(self.high, other.high)

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("empty histogram")
        return self.total / self.count

    def _representative(self, index: int) -> float:
        return 2.0 * self._gamma ** index / (self._gamma + 1.0)

    def quantile(
        self, q: Union[float, Iterable[float]]
    ) -> Union[float, List[float]]:
        """Quantile estimate(s), ``q`` in [0, 100] percentile units.

        Estimates are clamped to the exact [min, max] watermarks, so
        q=0 / q=100 are exact and no representative overshoots the
        observed range.
        """
        if not isinstance(q, (int, float)):
            return [self.quantile(single) for single in q]
        if self.count == 0:
            raise ValueError("empty histogram")
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"quantile must be in [0, 100]: {q}")
        rank = max(1, math.ceil(q / 100.0 * self.count))
        if rank <= self.zero_count:
            return 0.0
        seen = self.zero_count
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                value = self._representative(index)
                return min(max(value, self.low), self.high)
        return self.high  # pragma: no cover - rank <= count always hits

    def snapshot(self, percentiles=(50.0, 99.0, 99.9)) -> dict:
        out = {
            "type": "log_histogram",
            "count": self.count,
            "buckets": len(self.buckets),
            "relative_accuracy": self.relative_accuracy,
        }
        if self.count:
            out["mean"] = self.mean
            out["min"] = self.low
            out["max"] = self.high
            for p in percentiles:
                out[f"p{p:g}"] = self.quantile(p)
        return out
