"""Observability: request tracing, metrics, and kernel self-profiling.

The subsystem has three legs (see DESIGN.md "Observability"):

* **Span tracing** (:mod:`repro.obs.span`, :mod:`repro.obs.tracer`) —
  each client request optionally carries a typed span tree recording
  where its latency accrued: TCP retransmission waits, per-tier queue
  waits, processor-sharing service slices (with effective-speed
  annotations), and inter-tier network hops.
* **Metrics + event bus** (:mod:`repro.obs.metrics`,
  :mod:`repro.obs.bus`) — counters/gauges/streaming percentile
  sketches plus a pub/sub fabric for request lifecycle events.
* **Kernel self-profiling** (:class:`~repro.obs.bus.KernelProfiler`)
  — events dispatched, heap depth, wall-time per sim-second via the
  simulator's hook slot.

:class:`Observability` bundles all three and wires them into a run;
``repro.experiments.runner.run_rubbos(..., tracing=True)`` uses it, and
``python -m repro trace <scenario>`` exposes it from the shell.
Everything is off by default and adds only null-check overhead when
disabled.
"""

from __future__ import annotations

from typing import Optional

from .bus import EventBus, KernelProfiler
from .columnar import SPAN_DTYPE, ColumnarTrace, SpanStore
from .metrics import Counter, Gauge, MetricsRegistry, StreamingHistogram
from .sketch import LogHistogram, P2Quantile
from .span import LEAF_KINDS, SPAN_KINDS, Span, Trace
from .streaming import (
    AdaptiveTracer,
    LiveTelemetry,
    TailSloDetector,
    TelemetryConfig,
    TelemetryPipeline,
    WindowReport,
)
from .tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "AdaptiveTracer",
    "ColumnarTrace",
    "Counter",
    "EventBus",
    "Gauge",
    "KernelProfiler",
    "LEAF_KINDS",
    "LiveTelemetry",
    "LogHistogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Observability",
    "P2Quantile",
    "SPAN_DTYPE",
    "SPAN_KINDS",
    "Span",
    "SpanStore",
    "StreamingHistogram",
    "TailSloDetector",
    "TelemetryConfig",
    "TelemetryPipeline",
    "Trace",
    "Tracer",
    "WindowReport",
]


class Observability:
    """One tracer + metrics registry + kernel profiler, wired together."""

    def __init__(
        self,
        sample_every: int = 1,
        kernel_sample_every: int = 1024,
        columnar: bool = True,
    ):
        self.bus = EventBus()
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(
            sample_every=sample_every,
            metrics=self.metrics,
            bus=self.bus,
            columnar=columnar,
        )
        self.kernel = KernelProfiler(
            sample_every=kernel_sample_every, metrics=self.metrics
        )

    def attach(self, sim, app=None) -> "Observability":
        """Hook the kernel profiler into ``sim`` and adopt ``app``."""
        sim.attach_hooks(self.kernel)
        if app is not None:
            app.tracer = self.tracer
        return self

    def report(self) -> dict:
        """Kernel summary plus the full metrics snapshot."""
        return {
            "kernel": self.kernel.summary(),
            "metrics": self.metrics.snapshot(),
            "traces": len(self.tracer.traces),
        }
