"""Seeded random-number streams for reproducible experiments.

Every stochastic component in the reproduction draws from a named
substream derived from a single root seed, so that (a) experiments are
bit-for-bit reproducible given the seed and (b) changing the number of
draws in one component does not perturb the randomness seen by another
(common random numbers across experiment variants).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """A factory of independent, named numpy generators.

    >>> streams = RandomStreams(seed=42)
    >>> a = streams.get("workload")
    >>> b = streams.get("attack")
    >>> a is streams.get("workload")
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._root = np.random.SeedSequence(self.seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The substream seed is derived from the root seed and a stable
        hash of the name, so stream identity does not depend on the
        order in which streams are first requested.
        """
        if name not in self._streams:
            # Stable, platform-independent digest of the name.
            digest = 0
            for ch in name:
                digest = (digest * 1000003 + ord(ch)) % (2**63)
            child = np.random.SeedSequence(
                entropy=self._root.entropy, spawn_key=(digest,)
            )
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def spawn(self, name: str, index: int) -> np.random.Generator:
        """Return a fresh generator for an indexed family member.

        Unlike :meth:`get`, repeated calls return *new* generators; use
        for per-entity streams (e.g. one per simulated user).
        """
        return self.get(f"{name}[{index}]")

    def exponential(self, name: str, mean: float) -> float:
        """Draw one exponential variate with the given mean."""
        if mean <= 0:
            raise ValueError(f"exponential mean must be positive: {mean}")
        return float(self.get(name).exponential(mean))
