"""Shared-resource primitives for the DES kernel.

Provides the concurrency-control building blocks the n-tier model needs:

* :class:`Resource` — a counted resource (thread pool / connection pool)
  with an optionally *bounded* wait queue.  Bounded queues are the heart
  of the paper's model: the per-tier queue size ``Q_i`` is the tier's
  thread pool plus its admission backlog, and a full queue means the
  request is rejected (at the front-most tier: a TCP-level drop).
* :class:`Store` — a FIFO buffer of Python objects with put/get events.
* :class:`Container` — a continuous-level resource (tokens).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Optional

from .core import _PENDING, Event, SimulationError, Simulator

__all__ = ["Resource", "Request", "Store", "Container", "CapacityError"]


class CapacityError(SimulationError):
    """Raised when a bounded wait queue cannot accept another waiter."""


class Request(Event):
    """A pending or granted claim on a :class:`Resource`.

    Usable as a context manager inside a process::

        req = pool.request()
        yield req
        try:
            ...  # hold the resource
        finally:
            pool.release(req)
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        # Flattened Event.__init__ — one Request per tier visit makes
        # this allocation path hot at population scale.
        self.sim = resource.sim
        self.callbacks = []
        self._value = _PENDING
        self._ok = None
        self._defused = False
        self.resource = resource


class Resource:
    """A counted, FIFO resource with an optionally bounded wait queue.

    ``capacity`` is the number of concurrent holders (threads).
    ``max_queue`` bounds the number of *waiting* requests; ``None`` means
    unbounded.  When the wait queue is full, :meth:`request` raises
    :class:`CapacityError` synchronously — callers model a drop.
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: int,
        max_queue: Optional[int] = None,
    ):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        if max_queue is not None and max_queue < 0:
            raise SimulationError(f"max_queue must be >= 0, got {max_queue}")
        self.sim = sim
        self.capacity = int(capacity)
        self.max_queue = max_queue
        # Fluid background occupancy (hybrid engine): a continuous
        # number of bulk-population holders/waiters occupying this pool.
        # 0.0 keeps request/release on the exact pre-hybrid code path.
        self.background = 0.0
        # Granted requests, insertion-ordered.  A dict (used as an
        # ordered set) keeps membership tests and release O(1); with a
        # list the release scan is O(capacity) and tier pools run to
        # hundreds of threads.
        self.users: Dict[Request, None] = {}
        self.queue: Deque[Request] = deque()
        # High-water marks, useful for assertions and monitoring.
        self.peak_in_use = 0
        self.peak_queued = 0
        self.total_requests = 0
        self.total_rejections = 0

    # -- introspection ---------------------------------------------------

    @property
    def in_use(self) -> int:
        """Number of currently granted requests."""
        return len(self.users)

    @property
    def queued(self) -> int:
        """Number of requests waiting for a grant."""
        return len(self.queue)

    @property
    def occupancy(self) -> int:
        """Holders plus waiters — the paper's per-tier queue length."""
        return len(self.users) + len(self.queue)

    # -- operations -------------------------------------------------------

    def request(self) -> Request:
        """Claim one unit; the returned event triggers when granted.

        Raises :class:`CapacityError` if the wait queue is full.
        """
        self.total_requests += 1
        req = Request(self)
        users = self.users
        background = self.background
        if background == 0.0:
            if len(users) < self.capacity:
                users[req] = None
                if len(users) > self.peak_in_use:
                    self.peak_in_use = len(users)
                # Inlined req.succeed(): a fresh Request is always pending.
                # Grants are urgent (due now) — straight into the FIFO deque.
                req._ok = True
                req._value = None
                self.sim._imm.append(req)
                return req
            if self.max_queue is not None and len(self.queue) >= self.max_queue:
                self.total_rejections += 1
                raise CapacityError(
                    f"wait queue full ({self.max_queue} waiters)"
                )
            self.queue.append(req)
            if len(self.queue) > self.peak_queued:
                self.peak_queued = len(self.queue)
            return req
        # Hybrid path: bulk occupancy fills capacity slots first, then
        # spills into the bounded backlog, shrinking both for the
        # sampled discrete population.
        if len(users) + background < self.capacity:
            users[req] = None
            if len(users) > self.peak_in_use:
                self.peak_in_use = len(users)
            req._ok = True
            req._value = None
            self.sim._imm.append(req)
            return req
        if self.max_queue is not None:
            spill = background - (self.capacity - len(users))
            if spill < 0.0:
                spill = 0.0
            if len(self.queue) + spill >= self.max_queue:
                self.total_rejections += 1
                raise CapacityError(
                    f"wait queue full ({self.max_queue} waiters)"
                )
        self.queue.append(req)
        if len(self.queue) > self.peak_queued:
            self.peak_queued = len(self.queue)
        return req

    def release(self, request: Request) -> None:
        """Return a previously granted unit and wake the next waiter."""
        try:
            del self.users[request]
        except KeyError:
            raise SimulationError(
                "release() of a request that does not hold the resource"
            ) from None
        if self.background != 0.0 and (
            len(self.users) + self.background >= self.capacity
        ):
            # Bulk occupancy still fills the freed slot; no promotion.
            return
        while self.queue:
            nxt = self.queue.popleft()
            if nxt._value is not _PENDING:
                # Cancelled while waiting (e.g. timed-out); skip it.
                continue
            users = self.users
            users[nxt] = None
            if len(users) > self.peak_in_use:
                self.peak_in_use = len(users)
            # Inlined nxt.succeed() (pending checked just above).
            nxt._ok = True
            nxt._value = None
            self.sim._imm.append(nxt)
            break

    def set_background(self, background: float) -> None:
        """Set the fluid bulk occupancy of this pool (hybrid coupling).

        ``background`` holders/waiters from the fluid bulk population
        occupy capacity slots first and then backlog slots, shrinking
        the effective pool the sampled discrete requests compete for.
        Lowering it promotes waiting discrete requests into any slots
        the bulk vacated; 0.0 restores pre-hybrid behaviour exactly.
        """
        if background < 0:
            background = 0.0
        self.background = float(background)
        # Promote waiters into slots the bulk no longer occupies.
        while self.queue and (
            len(self.users) + self.background < self.capacity
        ):
            nxt = self.queue.popleft()
            if nxt._value is not _PENDING:
                continue  # Cancelled while waiting; skip it.
            users = self.users
            users[nxt] = None
            if len(users) > self.peak_in_use:
                self.peak_in_use = len(users)
            nxt._ok = True
            nxt._value = None
            self.sim._imm.append(nxt)

    def cancel(self, request: Request) -> None:
        """Withdraw a waiting request (e.g. after a wait timeout).

        Granted requests must be released, not cancelled.
        """
        if request in self.users:
            raise SimulationError("cancel() of a granted request")
        try:
            self.queue.remove(request)
        except ValueError:
            pass


class Store:
    """An unbounded-or-bounded FIFO buffer of arbitrary items."""

    def __init__(self, sim: Simulator, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()

    def put(self, item: Any) -> Event:
        """Insert ``item``; the event triggers once it is stored."""
        ev = Event(self.sim)
        if self.capacity is None or len(self.items) < self.capacity:
            self._deliver(item)
            ev.succeed()
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        """Remove one item; the event triggers with the item."""
        ev = Event(self.sim)
        if self.items:
            ev.succeed(self.items.popleft())
            self._admit_putter()
        else:
            self._getters.append(ev)
        return ev

    def _deliver(self, item: Any) -> None:
        while self._getters:
            getter = self._getters.popleft()
            if getter.triggered:
                continue
            getter.succeed(item)
            return
        self.items.append(item)

    def _admit_putter(self) -> None:
        if self._putters and (
            self.capacity is None or len(self.items) < self.capacity
        ):
            ev, item = self._putters.popleft()
            self._deliver(item)
            ev.succeed()

    def __len__(self) -> int:
        return len(self.items)


class Container:
    """A continuous-level resource (e.g. tokens, bytes of bandwidth)."""

    def __init__(
        self,
        sim: Simulator,
        capacity: float = float("inf"),
        init: float = 0.0,
    ):
        if init < 0 or init > capacity:
            raise SimulationError(
                f"init level {init} outside [0, {capacity}]"
            )
        self.sim = sim
        self.capacity = capacity
        self.level = float(init)
        self._getters: Deque[tuple] = deque()
        self._putters: Deque[tuple] = deque()

    def put(self, amount: float) -> Event:
        """Add ``amount``; triggers once there is room."""
        if amount <= 0:
            raise SimulationError(f"put amount must be positive: {amount}")
        ev = Event(self.sim)
        self._putters.append((ev, amount))
        self._settle()
        return ev

    def get(self, amount: float) -> Event:
        """Take ``amount``; triggers once the level suffices."""
        if amount <= 0:
            raise SimulationError(f"get amount must be positive: {amount}")
        ev = Event(self.sim)
        self._getters.append((ev, amount))
        self._settle()
        return ev

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                ev, amount = self._putters[0]
                if self.level + amount <= self.capacity:
                    self.level += amount
                    self._putters.popleft()
                    ev.succeed()
                    progressed = True
            if self._getters:
                ev, amount = self._getters[0]
                if amount <= self.level:
                    self.level -= amount
                    self._getters.popleft()
                    ev.succeed(amount)
                    progressed = True
