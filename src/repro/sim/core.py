"""Discrete-event simulation kernel.

This module provides the event loop that every other subsystem of the
reproduction is built on: a :class:`Simulator` with a time-ordered event
heap, one-shot :class:`Event` objects, :class:`Timeout` events, and
generator-based :class:`Process` coroutines in the style of SimPy (but
self-contained, so the reproduction has no runtime dependency beyond
numpy).

Typical usage::

    sim = Simulator()

    def worker(sim):
        yield sim.timeout(1.0)
        return "done"

    proc = sim.process(worker(sim))
    sim.run()
    assert proc.value == "done"

All simulated time is in seconds (floats).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "Simulator",
    "AnyOf",
    "AllOf",
    "SimulationError",
    "StopSimulation",
]

#: Sentinel for "this event has not been triggered yet".
_PENDING = object()

#: Scheduling priority for events triggered "right now" (e.g. succeed()).
URGENT = 0
#: Scheduling priority for ordinary timed events.
NORMAL = 1


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Simulator.run` at a target event."""

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The interrupting party may attach an arbitrary ``cause``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Interrupt(cause={self.cause!r})"


class Event:
    """A one-shot occurrence that processes can wait for.

    An event starts *pending*; it is *triggered* exactly once via
    :meth:`succeed` or :meth:`fail`, after which its callbacks run at the
    current simulation time.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        #: Callables ``cb(event)`` invoked when the event is processed.
        #: Set to ``None`` once processed.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._defused = False

    @property
    def triggered(self) -> bool:
        """Whether the event already has a value (success or failure)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already been run."""
        return self.callbacks is None

    @property
    def ok(self) -> Optional[bool]:
        """True on success, False on failure, None while pending."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if the event is still pending."""
        if self._value is _PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self, self.sim.now, URGENT)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes get the exception thrown into them.  If nobody
        ever waits on a failed event the simulator re-raises it, unless
        :meth:`defused` was called.
        """
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.sim._schedule(self, self.sim.now, URGENT)
        return self

    def defuse(self) -> None:
        """Mark a failure as handled so the simulator does not re-raise."""
        self._defused = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._schedule(self, sim.now + delay, NORMAL)


class _Initialize(Event):
    """Internal event used to start a process on the next step."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process"):
        super().__init__(sim)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        sim._schedule(self, sim.now, URGENT)


class Process(Event):
    """A generator-based coroutine driven by the simulator.

    The generator yields :class:`Event` instances; the process resumes
    when the yielded event triggers.  A process is itself an event that
    triggers with the generator's return value, so processes can wait on
    each other (this is how synchronous RPC between tiers is modelled).
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, sim: "Simulator", generator: Generator):
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"process() requires a generator, got {generator!r}"
            )
        super().__init__(sim)
        self._generator = generator
        self._target: Optional[Event] = _Initialize(sim, self)

    @property
    def is_alive(self) -> bool:
        """Whether the process has not yet terminated."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process.

        The interrupt is delivered immediately (at the current simulation
        time).  Interrupting a dead process is an error.
        """
        if self.triggered:
            raise SimulationError("cannot interrupt a terminated process")
        # Detach from whatever the process is waiting on so the stale
        # resume callback never fires.
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        failure = Event(self.sim)
        failure.callbacks.append(self._resume)
        failure._ok = False
        failure._value = Interrupt(cause)
        failure._defused = True
        self.sim._schedule(failure, self.sim.now, URGENT)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        sim = self.sim
        sim._active_process = self
        while True:
            try:
                if event is None or event._ok:
                    value = None if event is None else event._value
                    target = self._generator.send(value)
                else:
                    event._defused = True
                    target = self._generator.throw(event._value)
            except StopIteration as stop:
                sim._active_process = None
                self.succeed(stop.value)
                return
            except BaseException as exc:
                sim._active_process = None
                self.fail(exc)
                return

            if not isinstance(target, Event):
                sim._active_process = None
                exc = SimulationError(
                    f"process yielded a non-event: {target!r}"
                )
                # Deliver the error to the generator so it can clean up.
                self._generator.throw(exc)
                raise exc

            if target.processed:
                # Already triggered and handled: resume synchronously.
                event = target
                continue
            if target.triggered:
                # Triggered but callbacks not yet run: join them.
                target.callbacks.append(self._resume)
                self._target = target
                sim._active_process = None
                return
            target.callbacks.append(self._resume)
            self._target = target
            sim._active_process = None
            return


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._count = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("events belong to different simulators")
            if ev.processed:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _collect(self) -> dict:
        return {
            ev: ev._value
            for ev in self.events
            if ev.triggered and ev._ok
        }

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(_Condition):
    """Triggers as soon as any of the given events triggers."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed(self._collect())


class AllOf(_Condition):
    """Triggers once all of the given events have triggered."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed(self._collect())


class Simulator:
    """The discrete-event simulation core: clock plus event heap.

    A single optional *hooks* object (see :meth:`attach_hooks`) lets an
    observer — e.g. :class:`repro.obs.bus.KernelProfiler` — watch every
    event dispatch and process spawn.  With no hooks attached the cost
    is one ``None`` check per event.
    """

    def __init__(self):
        self._now = 0.0
        self._heap: List[tuple] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        self._hooks: Optional[Any] = None

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event construction helpers ------------------------------------

    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new :class:`Process` driving ``generator``."""
        proc = Process(self, generator)
        if self._hooks is not None:
            self._hooks.on_process(proc)
        return proc

    # -- observability hooks ---------------------------------------------

    @property
    def hooks(self) -> Optional[Any]:
        """The attached kernel hooks object, if any."""
        return self._hooks

    def attach_hooks(self, hooks: Any) -> None:
        """Attach a kernel observer.

        ``hooks`` must provide ``on_event(event, now, heap_len)`` and
        ``on_process(process)``; an optional ``on_attach(sim)`` runs
        immediately.  Hooks observe only — they must not mutate the
        schedule — so attaching them never changes simulation results.
        """
        if self._hooks is not None:
            raise SimulationError("hooks are already attached")
        self._hooks = hooks
        on_attach = getattr(hooks, "on_attach", None)
        if on_attach is not None:
            on_attach(self)

    def detach_hooks(self) -> None:
        """Remove the attached kernel observer (no-op if none)."""
        self._hooks = None

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event triggering when any input event triggers."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event triggering when all input events trigger."""
        return AllOf(self, events)

    def call_at(self, time: float, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"call_at({time}) is in the past (now={self._now})"
            )
        ev = Event(self)
        ev._ok = True
        ev._value = None
        ev.callbacks.append(lambda _ev: fn())
        self._schedule(ev, time, NORMAL)
        return ev

    def call_in(self, delay: float, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` after ``delay`` seconds."""
        return self.call_at(self._now + delay, fn)

    # -- scheduling / main loop ----------------------------------------

    def _schedule(self, event: Event, time: float, priority: int) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time, priority, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        if not self._heap:
            raise SimulationError("step() on an empty schedule")
        time, _priority, _seq, event = heapq.heappop(self._heap)
        self._now = time
        if self._hooks is not None:
            self._hooks.on_event(event, time, len(self._heap))
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # A failure nobody handled: surface it instead of silently
            # dropping the exception.
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the schedule drains), a
        number (run until that simulation time), or an :class:`Event`
        (run until it triggers, returning its value).
        """
        if until is None:
            while self._heap:
                self.step()
            return None

        if isinstance(until, Event):
            if until.triggered:
                # Still drain same-time callbacks for determinism.
                return until.value if until._ok else None

            def _stop(event: Event) -> None:
                raise StopSimulation(event)

            until.callbacks.append(_stop)
            try:
                while self._heap:
                    self.step()
            except StopSimulation:
                if not until._ok:
                    until._defused = True
                    raise until._value
                return until._value
            raise SimulationError(
                "schedule drained before the target event triggered"
            )

        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(
                f"run(until={horizon}) is in the past (now={self._now})"
            )
        while self._heap and self._heap[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None
