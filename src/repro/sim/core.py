"""Discrete-event simulation kernel.

This module provides the event loop that every other subsystem of the
reproduction is built on: a :class:`Simulator` with a time-ordered event
queue, one-shot :class:`Event` objects, :class:`Timeout` events, and
generator-based :class:`Process` coroutines in the style of SimPy (but
self-contained, so the reproduction has no runtime dependency beyond
numpy).

Typical usage::

    sim = Simulator()

    def worker(sim):
        yield sim.timeout(1.0)
        return "done"

    proc = sim.process(worker(sim))
    sim.run()
    assert proc.value == "done"

All simulated time is in seconds (floats).

Hot-path notes
--------------

The kernel is the inner loop of every experiment (a 60 s run of 10k
users dispatches ~1M events), so the dispatch path trades a little
repetition for speed; the invariants it preserves are spelled out in
DESIGN.md ("Kernel invariants") and enforced byte-for-byte by
``tests/test_determinism.py``:

* **Two-level event queue.**  The schedule is split by priority class.
  *Urgent* events (``succeed()``/``fail()``/interrupts — everything the
  old kernel pushed at ``(now, URGENT, seq)``) are only ever scheduled
  at the current instant, so a plain FIFO deque (``_imm``) realises
  their total order exactly: same-timestamp batches are delivered
  through slot ``popleft`` instead of per-event heap traffic.  *Timed*
  events (``NORMAL`` priority) go into a bucketed calendar wheel —
  ``wheel_buckets`` buckets of ``bucket_width`` seconds — holding
  ``(time, seq, obj)`` entries, with a spill heap for entries beyond
  the current window.  Buckets are append-only until the consume cursor
  reaches them, then sorted once; the common pop is an index bump, not
  a heap sift.  The dispatch order is provably identical to the old
  single heap's ``(time, priority, seq)`` order — see DESIGN.md §6 for
  the proof sketch and the window-rotation rules.
* **FIFO tie-breaking.**  ``seq`` is a monotone counter over timed
  entries; urgent order is deque order.  Events scheduled at the same
  instant and priority dispatch in scheduling order, deterministically.
* **Entry reuse for bare callbacks.**  Dispatch treats any queue entry
  whose ``callbacks`` attribute is ``None`` as a *bare timer* and calls
  ``entry.fire()`` directly — no callbacks list, no value, no failure
  bookkeeping.  :meth:`Simulator.defer_at` wraps a plain callable in a
  1-slot :class:`_Deferred`; the processor-sharing server schedules its
  own timer objects this way and lazily discards superseded ones via a
  generation check rather than paying O(n) queue deletion.
* **Inlined dispatch.**  :meth:`Simulator.run` repeats the body of
  :meth:`Simulator.step` inline with locals bound outside the loop;
  both must stay semantically identical.
* **Batched cyclic GC.**  Event dispatch allocates heavily (events,
  queue entries, generator frames) and CPython's default generation-0
  cadence (every ~700 allocations) costs ~15% of kernel wall time at
  population scale.  :meth:`Simulator.run` therefore disables the
  cyclic collector for the duration of the loop and runs one
  generation-1 collection every ``_GC_EVENT_BATCH`` dispatched events.
  Generation 1 (not a full sweep) matters at scale: survivors are
  promoted to generation 2 and never re-scanned, so each periodic
  collection only walks objects allocated since the previous one — a
  traced run retains ~1M span rows, and full sweeps would re-walk all
  of them every batch.  Young cycles (aborted generator frames,
  exception tracebacks) are still reclaimed, which bounds garbage
  accumulation.  Pure memory management: simulation results are
  identical either way, and a caller that already disabled GC is left
  alone.
"""

from __future__ import annotations

import gc as _gc
from bisect import insort
from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "Simulator",
    "AnyOf",
    "AllOf",
    "SimulationError",
    "StopSimulation",
]

#: Sentinel for "this event has not been triggered yet".
_PENDING = object()

#: Scheduling priority for events triggered "right now" (e.g. succeed()).
#: Kept for documentation/compatibility: urgent events now live in the
#: FIFO deque ``Simulator._imm`` rather than carrying a priority field.
URGENT = 0
#: Scheduling priority for ordinary timed events (calendar wheel/spill).
NORMAL = 1

_INF = float("inf")

#: Dispatched events between generation-1 cyclic-GC collections inside
#: :meth:`Simulator.run` (see "Batched cyclic GC" in the module
#: docstring).  ~500k events is a few seconds of 10k-user simulation;
#: measured on the flagship traced run, peak RSS is unchanged versus a
#: 4x smaller batch (young cycles die to refcounting long before the
#: collector sees them) while each skipped collection saves ~90 ms.
_GC_EVENT_BATCH = 500_000


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Simulator.run` at a target event."""

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The interrupting party may attach an arbitrary ``cause``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Interrupt(cause={self.cause!r})"


class Event:
    """A one-shot occurrence that processes can wait for.

    An event starts *pending*; it is *triggered* exactly once via
    :meth:`succeed` or :meth:`fail`, after which its callbacks run at the
    current simulation time.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        #: Callables ``cb(event)`` invoked when the event is processed.
        #: Set to ``None`` once processed.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._defused = False

    @property
    def triggered(self) -> bool:
        """Whether the event already has a value (success or failure)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already been run."""
        return self.callbacks is None

    @property
    def ok(self) -> Optional[bool]:
        """True on success, False on failure, None while pending."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if the event is still pending."""
        if self._value is _PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.sim._imm.append(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes get the exception thrown into them.  If nobody
        ever waits on a failed event the simulator re-raises it, unless
        :meth:`defused` was called.
        """
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.sim._imm.append(self)
        return self

    def defuse(self) -> None:
        """Mark a failure as handled so the simulator does not re-raise."""
        self._defused = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after a fixed delay.

    Construction is flattened (no ``super().__init__`` chain): a timeout
    is born triggered-but-unprocessed and goes straight into the
    calendar wheel.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        sim._push_timed(sim._now + delay, self)


class _Deferred:
    """A bare scheduled callback: one queue entry, no Event machinery.

    Any queue entry whose ``callbacks`` attribute is ``None`` is
    dispatched as ``entry.fire()`` — no callbacks list is allocated, no
    value/failure bookkeeping happens.  ``_Deferred`` stores the
    callable directly in its ``fire`` slot; other subsystems (the
    processor-sharing server) provide their own objects implementing
    the same ``callbacks = None`` / ``fire()`` protocol.
    """

    __slots__ = ("fire",)

    #: Marks this entry as a bare timer for the dispatch loop.
    callbacks = None

    def __init__(self, fn: Callable[[], None]):
        self.fire = fn


class _Initialize(Event):
    """Internal event used to start a process on the next step."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process"):
        self.sim = sim
        self.callbacks = [process._presume]
        self._value = None
        self._ok = True
        self._defused = False
        sim._imm.append(self)


class Process(Event):
    """A generator-based coroutine driven by the simulator.

    The generator yields :class:`Event` instances; the process resumes
    when the yielded event triggers.  A process is itself an event that
    triggers with the generator's return value, so processes can wait on
    each other (this is how synchronous RPC between tiers is modelled).
    """

    __slots__ = ("_generator", "_target", "_presume")

    def __init__(self, sim: "Simulator", generator: Generator):
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"process() requires a generator, got {generator!r}"
            )
        super().__init__(sim)
        self._generator = generator
        # The bound resume callback is cached once: every event wait
        # registers it, and binding a method per wait is measurable at
        # kernel scale.
        self._presume = self._resume
        self._target: Optional[Event] = _Initialize(sim, self)

    @property
    def is_alive(self) -> bool:
        """Whether the process has not yet terminated."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process.

        The interrupt is delivered immediately (at the current simulation
        time).  Interrupting a dead process is an error.
        """
        if self.triggered:
            raise SimulationError("cannot interrupt a terminated process")
        # Detach from whatever the process is waiting on so the stale
        # resume callback never fires.
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._presume)
            except ValueError:
                pass
        self._target = None
        failure = Event(self.sim)
        failure.callbacks.append(self._presume)
        failure._ok = False
        failure._value = Interrupt(cause)
        failure._defused = True
        self.sim._imm.append(failure)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        if self._value is not _PENDING:
            # Stale wakeup: the process already terminated.  Reachable
            # when a resume callback could not be detached — e.g. the
            # target event was mid-dispatch (callbacks already captured)
            # when interrupt() ran, or the process was interrupted twice
            # before the first failure was delivered — and the process
            # then finished on the earlier wakeup.  Resuming would throw
            # into a closed generator; there is nothing left to advance.
            return
        sim = self.sim
        generator = self._generator
        presume = self._presume
        sim._active_process = self
        while True:
            try:
                if event is None or event._ok:
                    value = None if event is None else event._value
                    target = generator.send(value)
                else:
                    event._defused = True
                    target = generator.throw(event._value)
            except StopIteration as stop:
                sim._active_process = None
                self.succeed(stop.value)
                return
            except BaseException as exc:
                sim._active_process = None
                self.fail(exc)
                return

            # Fast path: yielded events are overwhelmingly pending or
            # freshly triggered (Timeouts are born triggered) — both
            # cases register the resume callback and park the process.
            try:
                callbacks = target.callbacks
            except AttributeError:
                callbacks = None
            if callbacks is not None:
                callbacks.append(presume)
                self._target = target
                sim._active_process = None
                return
            if isinstance(target, Event):
                # Already triggered and processed: resume synchronously.
                event = target
                continue

            sim._active_process = None
            exc = SimulationError(
                f"process yielded a non-event: {target!r}"
            )
            # Deliver the error to the generator so it can clean up.
            generator.throw(exc)
            raise exc


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._count = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("events belong to different simulators")
            if ev.processed:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _collect(self) -> dict:
        return {
            ev: ev._value
            for ev in self.events
            if ev.triggered and ev._ok
        }

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(_Condition):
    """Triggers as soon as any of the given events triggers."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed(self._collect())


class AllOf(_Condition):
    """Triggers once all of the given events have triggered."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed(self._collect())


class Simulator:
    """The discrete-event simulation core: clock plus two-level queue.

    Urgent (same-instant) events live in the ``_imm`` FIFO deque; timed
    events live in a calendar wheel of ``wheel_buckets`` buckets, each
    ``bucket_width`` seconds wide, with a ``_spill`` heap for entries
    beyond the current window (``wheel_buckets * bucket_width`` seconds
    long).  The defaults are tuned for the n-tier workload (sub-ms
    service quanta and network delays, multi-second think times); both
    knobs only affect speed, never results.

    A single optional *hooks* object (see :meth:`attach_hooks`) lets an
    observer — e.g. :class:`repro.obs.bus.KernelProfiler` — watch every
    event dispatch and process spawn.  With no hooks attached the cost
    is one ``None`` check per event.
    """

    # Slotted: the dispatch loop touches ~10 of these per event, and an
    # offset load beats an instance-dict lookup at that frequency.
    __slots__ = (
        "_now",
        "_seq",
        "_imm",
        "_width",
        "_inv_width",
        "_nbuckets",
        "_nlast",
        "_span",
        "_buckets",
        "_window_start",
        "_window_end",
        "_active_idx",
        "_active_pos",
        "_timed_count",
        "_spill",
        "_active_process",
        "_hooks",
        "_hook_stride",
        "_hook_countdown",
    )

    def __init__(
        self, bucket_width: float = 1e-3, wheel_buckets: int = 8192
    ):
        if not bucket_width > 0.0:
            raise SimulationError(
                f"bucket_width must be > 0: {bucket_width!r}"
            )
        if wheel_buckets < 1:
            raise SimulationError(
                f"wheel_buckets must be >= 1: {wheel_buckets!r}"
            )
        self._now = 0.0
        self._seq = 0
        #: Urgent events, dispatched FIFO before any timed entry.
        self._imm: deque = deque()
        # Calendar wheel state.  Entries are (time, seq, obj) tuples;
        # see DESIGN.md §6 for the cursor/sortedness invariants.
        self._width = float(bucket_width)
        self._inv_width = 1.0 / self._width
        self._nbuckets = int(wheel_buckets)
        self._nlast = self._nbuckets - 1
        self._span = self._width * self._nbuckets
        self._buckets: List[List[tuple]] = [
            [] for _ in range(self._nbuckets)
        ]
        self._window_start = 0.0
        self._window_end = self._span
        self._active_idx = 0
        self._active_pos = 0
        self._timed_count = 0
        #: Far-future timed entries, beyond the current wheel window.
        self._spill: List[tuple] = []
        self._active_process: Optional[Process] = None
        self._hooks: Optional[Any] = None
        self._hook_stride = 1
        self._hook_countdown = 1

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    @property
    def pending_events(self) -> int:
        """Number of scheduled-but-undispatched events (all queues)."""
        return self._timed_count + len(self._spill) + len(self._imm)

    # -- event construction helpers ------------------------------------

    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def timeout_batch(
        self, delays: Iterable[float], value: Any = None
    ) -> List[Timeout]:
        """Create one timeout per delay, scheduled back-to-back.

        Equivalent to ``[sim.timeout(d, value) for d in delays]`` — the
        timeouts receive consecutive sequence numbers, so relative FIFO
        order among them (and against everything else) is identical to
        the loop form.  Exists so synchronized fan-outs (population
        start staggering, lock-step burst edges) have one audited
        batching point.
        """
        return [Timeout(self, d, value) for d in delays]

    def process(self, generator: Generator) -> Process:
        """Start a new :class:`Process` driving ``generator``."""
        proc = Process(self, generator)
        if self._hooks is not None:
            self._hooks.on_process(proc)
        return proc

    # -- observability hooks ---------------------------------------------

    @property
    def hooks(self) -> Optional[Any]:
        """The attached kernel hooks object, if any."""
        return self._hooks

    def attach_hooks(self, hooks: Any) -> None:
        """Attach a kernel observer.

        ``hooks`` must provide ``on_events(count, now, pending)`` and
        ``on_process(process)``; an optional ``on_attach(sim)`` runs
        immediately.  ``on_events`` is *batched*: the dispatch loop
        calls it once every ``hooks.event_stride`` dispatched events
        (default 1) with the exact number of events since the previous
        call, plus once more with the remainder when :meth:`run`
        returns — so cumulative event counts are exact while the
        per-event cost stays a couple of integer operations.  Hooks
        observe only — they must not mutate the schedule — so attaching
        them never changes simulation results.
        """
        if self._hooks is not None:
            raise SimulationError("hooks are already attached")
        on_events = getattr(hooks, "on_events", None)
        if on_events is None:
            raise SimulationError(
                "hooks object must provide on_events(count, now, pending)"
            )
        stride = int(getattr(hooks, "event_stride", 1) or 1)
        if stride < 1:
            raise SimulationError(f"event_stride must be >= 1: {stride}")
        self._hooks = hooks
        self._hook_stride = stride
        self._hook_countdown = stride
        on_attach = getattr(hooks, "on_attach", None)
        if on_attach is not None:
            on_attach(self)

    def detach_hooks(self) -> None:
        """Remove the attached kernel observer (no-op if none)."""
        self._flush_hook_events()
        self._hooks = None
        self._hook_stride = 1
        self._hook_countdown = 1

    def _flush_hook_events(self) -> None:
        """Report any not-yet-reported events to the hooks object."""
        hooks = self._hooks
        if hooks is None:
            return
        pending = self._hook_stride - self._hook_countdown
        if pending:
            self._hook_countdown = self._hook_stride
            hooks.on_events(pending, self._now, self.pending_events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event triggering when any input event triggers."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event triggering when all input events trigger."""
        return AllOf(self, events)

    def call_at(self, time: float, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` at absolute simulation time ``time``.

        Returns the scheduling :class:`Event` (waitable).  For fire-and-
        forget timers on the hot path prefer :meth:`defer_at`.
        """
        if time < self._now:
            raise SimulationError(
                f"call_at({time}) is in the past (now={self._now})"
            )
        ev = Event(self)
        ev._ok = True
        ev._value = None
        ev.callbacks.append(lambda _ev: fn())
        self._push_timed(time, ev)
        return ev

    def call_in(self, delay: float, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` after ``delay`` seconds."""
        return self.call_at(self._now + delay, fn)

    def defer_at(self, time: float, fn: Callable[[], None]) -> None:
        """Schedule bare ``fn()`` at absolute time ``time`` (not waitable).

        The cheap sibling of :meth:`call_at`: one queue entry, no Event.
        Scheduling order relative to every other entry is identical to
        ``call_at`` (same priority, same sequence counter).
        """
        if time < self._now:
            raise SimulationError(
                f"defer_at({time}) is in the past (now={self._now})"
            )
        self._push_timed(time, _Deferred(fn))

    def defer_in(self, delay: float, fn: Callable[[], None]) -> None:
        """Schedule bare ``fn()`` after ``delay`` seconds (not waitable)."""
        self.defer_at(self._now + delay, fn)

    def inject(self, time: float, fn: Callable[[], None]) -> None:
        """Inject an externally sourced event at absolute ``time``.

        The entry point the sharded kernel uses between safe windows:
        a message received from another shard becomes a bare timer at
        its pre-computed delivery timestamp.  ``time`` must not be in
        the past — the conservative window protocol *guarantees* every
        cross-shard delivery lands strictly inside a future window, so
        a violation here means the lookahead bound was broken and the
        run must abort loudly rather than silently reorder
        (:class:`SimulationError` via :meth:`defer_at`).

        Injected entries share the normal timed queue and sequence
        counter, so dispatch order against local events at the same
        timestamp is exactly what a single shared simulator would have
        produced had the sender scheduled the delivery directly.
        """
        self.defer_at(time, fn)

    # -- scheduling / main loop ----------------------------------------

    def _schedule(self, event: Event, time: float, priority: int) -> None:
        """Back-compat shim: route an entry to the right queue."""
        if priority == URGENT:
            self._imm.append(event)
        else:
            self._push_timed(time, event)

    def _push_timed(self, time: float, obj: Any) -> None:
        """Enqueue ``obj`` at absolute ``time`` (NORMAL priority).

        ``obj`` is an :class:`Event` or a bare-timer object
        (``callbacks is None`` + ``fire()``).  ``time`` must be
        ``>= self._now`` and finite; callers check the former, the
        spill branch rejects the latter.
        """
        self._seq = seq = self._seq + 1
        if time < self._window_end:
            idx = int((time - self._window_start) * self._inv_width)
            nlast = self._nlast
            if idx > nlast:
                # Float round-up at the window edge: the last bucket
                # owns [window_end - width, window_end).
                idx = nlast
            active = self._active_idx
            bucket = self._buckets[idx]
            if idx > active:
                # Future bucket: append unsorted; sorted on activation.
                bucket.append((time, seq, obj))
            elif idx == active:
                # Active bucket: keep [pos:] sorted.  The new entry
                # orders >= every consumed entry (time >= now and seq
                # is fresh), so inserting at >= pos is always correct.
                insort(bucket, (time, seq, obj), self._active_pos)
            else:
                # Demotion: the cursor skipped this (empty) bucket when
                # scanning forward, or halted past it at a run(horizon)
                # boundary.  Only reachable while the current active
                # bucket has no live-and-consumed mix: either pos == 0
                # (nothing consumed) or pos == len (fully consumed
                # leftover, safe to drop).
                abucket = self._buckets[active]
                if self._active_pos >= len(abucket):
                    abucket.clear()
                bucket.append((time, seq, obj))
                bucket.sort()
                self._active_idx = idx
                self._active_pos = 0
            self._timed_count += 1
        else:
            if time == _INF or time != time:
                raise SimulationError(
                    f"cannot schedule at non-finite time: {time!r}"
                )
            heappush(self._spill, (time, seq, obj))

    def _normalize_wheel(self) -> None:
        """Advance the cursor to the next non-empty bucket and sort it.

        Precondition: ``_timed_count > 0`` and the active bucket is
        exhausted (``_active_pos >= len(bucket)``).  All live entries
        sit in buckets after the active one, so the forward scan always
        terminates inside the wheel.
        """
        buckets = self._buckets
        idx = self._active_idx
        bucket = buckets[idx]
        if bucket:
            bucket.clear()
        idx += 1
        while not buckets[idx]:
            idx += 1
        buckets[idx].sort()
        self._active_idx = idx
        self._active_pos = 0

    def _rotate_to_spill(self) -> None:
        """Move the window forward to the spill head and refill the wheel.

        Precondition: the wheel is empty (``_timed_count == 0``) and
        ``_spill`` is not.  Rotation is only ever performed on a pop
        path immediately followed by consuming the new head — never on
        a peek — so no insert can observe a window that starts after
        ``now``'s bucket.
        """
        bucket = self._buckets[self._active_idx]
        if bucket:
            bucket.clear()
        spill = self._spill
        t0 = spill[0][0]
        span = self._span
        # Align the window to a span multiple containing t0, guarding
        # both float round-down (ws > t0) and round-up (t0 >= we).
        ws = int(t0 / span) * span
        if ws > t0:
            ws -= span
        we = ws + span
        if t0 >= we:
            ws = we
            we = ws + span
        self._window_start = ws
        self._window_end = we
        buckets = self._buckets
        inv = self._inv_width
        nlast = self._nlast
        min_idx = nlast
        count = 0
        pop = heappop
        while spill and spill[0][0] < we:
            entry = pop(spill)
            idx = int((entry[0] - ws) * inv)
            if idx > nlast:
                idx = nlast
            buckets[idx].append(entry)
            if idx < min_idx:
                min_idx = idx
            count += 1
        self._timed_count = count
        # Entries drain from the spill heap in (time, seq) order, so
        # every refilled bucket is already sorted; sorting the first
        # one keeps the active-bucket invariant explicit and is O(n).
        buckets[min_idx].sort()
        self._active_idx = min_idx
        self._active_pos = 0

    def _pop_timed(self) -> Optional[tuple]:
        """Pop the earliest timed entry, or None if none remain."""
        while True:
            pos = self._active_pos
            bucket = self._buckets[self._active_idx]
            if pos < len(bucket):
                self._active_pos = pos + 1
                self._timed_count -= 1
                return bucket[pos]
            if self._timed_count:
                self._normalize_wheel()
                continue
            if not self._spill:
                return None
            self._rotate_to_spill()

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none.

        Urgent events are always due at the current time.  Peeking may
        normalize the wheel cursor (sorting the next bucket) but never
        rotates the window — rotation is reserved for pop paths.
        """
        if self._imm:
            return self._now
        if self._timed_count:
            bucket = self._buckets[self._active_idx]
            if self._active_pos >= len(bucket):
                self._normalize_wheel()
                bucket = self._buckets[self._active_idx]
            return bucket[self._active_pos][0]
        if self._spill:
            return self._spill[0][0]
        return _INF

    def step(self) -> None:
        """Process the single next event.

        NOTE: the dispatch body is inlined (with loop-hoisted locals)
        in each of :meth:`run`'s loops; keep them in sync.
        """
        if self._imm:
            event = self._imm.popleft()
        else:
            entry = self._pop_timed()
            if entry is None:
                raise SimulationError("step() on an empty schedule")
            self._now = entry[0]
            event = entry[2]
        if self._hooks is not None:
            countdown = self._hook_countdown - 1
            if countdown:
                self._hook_countdown = countdown
            else:
                self._hook_countdown = self._hook_stride
                self._hooks.on_events(
                    self._hook_stride, self._now, self.pending_events
                )
        callbacks = event.callbacks
        if callbacks is None:
            event.fire()
            return
        event.callbacks = None
        if len(callbacks) == 1:
            # Nearly every event has exactly one waiter (a process's
            # resume callback); skipping the iterator protocol for that
            # case is measurable at kernel scale.
            callbacks[0](event)
        else:
            for callback in callbacks:
                callback(event)
        if not event._ok and not event._defused:
            # A failure nobody handled: surface it instead of silently
            # dropping the exception.
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the schedule drains), a
        number (run until that simulation time), or an :class:`Event`
        (run until it triggers, returning its value).
        """
        manage_gc = _gc.isenabled()
        if manage_gc:
            _gc.disable()
        try:
            return self._run(until)
        finally:
            self._flush_hook_events()
            if manage_gc:
                _gc.enable()

    def _drain(self) -> None:
        """Dispatch events until the schedule is empty.

        Shared by ``run()`` and ``run(until=Event)`` — the latter stops
        early via :class:`StopSimulation` raised from a callback.
        """
        imm = self._imm
        imm_pop = imm.popleft
        buckets = self._buckets
        budget = _GC_EVENT_BATCH
        # Loop-hoisted: hooks (if any) are attached before run() — the
        # attach/detach API is not meant to be called from callbacks.
        hooks = self._hooks
        while True:
            if imm:
                event = imm_pop()
            else:
                pos = self._active_pos
                bucket = buckets[self._active_idx]
                if pos < len(bucket):
                    entry = bucket[pos]
                    self._active_pos = pos + 1
                    self._timed_count -= 1
                elif self._timed_count:
                    self._normalize_wheel()
                    continue
                elif self._spill:
                    self._rotate_to_spill()
                    continue
                else:
                    return
                self._now = entry[0]
                event = entry[2]
            if hooks is not None:
                countdown = self._hook_countdown - 1
                if countdown:
                    self._hook_countdown = countdown
                else:
                    self._hook_countdown = self._hook_stride
                    hooks.on_events(
                        self._hook_stride, self._now, self.pending_events
                    )
            budget -= 1
            if not budget:
                _gc.collect(1)
                budget = _GC_EVENT_BATCH
            callbacks = event.callbacks
            if callbacks is None:
                event.fire()
                continue
            event.callbacks = None
            if len(callbacks) == 1:
                callbacks[0](event)
            else:
                for callback in callbacks:
                    callback(event)
            if not event._ok and not event._defused:
                raise event._value

    def _run(self, until: Any) -> Any:
        if until is None:
            self._drain()
            return None

        if isinstance(until, Event):
            if until.triggered:
                return until.value if until._ok else None

            def _stop(event: Event) -> None:
                raise StopSimulation(event)

            until.callbacks.append(_stop)
            try:
                self._drain()
            except StopSimulation:
                if not until._ok:
                    until._defused = True
                    raise until._value
                return until._value
            raise SimulationError(
                "schedule drained before the target event triggered"
            )

        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(
                f"run(until={horizon}) is in the past (now={self._now})"
            )
        imm = self._imm
        imm_pop = imm.popleft
        buckets = self._buckets
        budget = _GC_EVENT_BATCH
        hooks = self._hooks
        while True:
            if imm:
                event = imm_pop()
            else:
                pos = self._active_pos
                bucket = buckets[self._active_idx]
                if pos < len(bucket):
                    entry = bucket[pos]
                    if entry[0] > horizon:
                        break
                    self._active_pos = pos + 1
                    self._timed_count -= 1
                elif self._timed_count:
                    self._normalize_wheel()
                    continue
                elif self._spill:
                    if self._spill[0][0] > horizon:
                        break
                    self._rotate_to_spill()
                    continue
                else:
                    break
                self._now = entry[0]
                event = entry[2]
            if hooks is not None:
                countdown = self._hook_countdown - 1
                if countdown:
                    self._hook_countdown = countdown
                else:
                    self._hook_countdown = self._hook_stride
                    hooks.on_events(
                        self._hook_stride, self._now, self.pending_events
                    )
            budget -= 1
            if not budget:
                _gc.collect(1)
                budget = _GC_EVENT_BATCH
            callbacks = event.callbacks
            if callbacks is None:
                event.fire()
                continue
            event.callbacks = None
            if len(callbacks) == 1:
                callbacks[0](event)
            else:
                for callback in callbacks:
                    callback(event)
            if not event._ok and not event._defused:
                raise event._value
        self._now = horizon
        return None
