"""Discrete-event simulation kernel.

This module provides the event loop that every other subsystem of the
reproduction is built on: a :class:`Simulator` with a time-ordered event
heap, one-shot :class:`Event` objects, :class:`Timeout` events, and
generator-based :class:`Process` coroutines in the style of SimPy (but
self-contained, so the reproduction has no runtime dependency beyond
numpy).

Typical usage::

    sim = Simulator()

    def worker(sim):
        yield sim.timeout(1.0)
        return "done"

    proc = sim.process(worker(sim))
    sim.run()
    assert proc.value == "done"

All simulated time is in seconds (floats).

Hot-path notes
--------------

The kernel is the inner loop of every experiment (a 60 s run of 10k
users dispatches ~1M events), so the dispatch path trades a little
repetition for speed; the invariants it preserves are spelled out in
DESIGN.md ("Kernel invariants") and enforced byte-for-byte by
``tests/test_determinism.py``:

* **Heap stability / FIFO tie-breaking.**  Heap entries are
  ``(time, priority, seq, event)`` with ``seq`` a monotone counter, so
  events scheduled at the same instant and priority dispatch in
  scheduling order, deterministically.
* **Entry reuse for bare callbacks.**  :meth:`Simulator.defer_at`
  schedules a plain callable wrapped in a 1-slot :class:`_Deferred`
  instead of a full :class:`Event` (no callbacks list, no value, no
  failure bookkeeping).  Consumers that re-arm timers on every state
  change (the processor-sharing server) leave superseded entries in the
  heap to be lazily discarded at dispatch via a generation check,
  rather than paying O(n) heap deletion.
* **Inlined dispatch.**  :meth:`Simulator.run` repeats the body of
  :meth:`Simulator.step` inline with locals bound outside the loop;
  both must stay semantically identical.
* **Batched cyclic GC.**  Event dispatch allocates heavily (events,
  heap entries, generator frames) and CPython's default generation-0
  cadence (every ~700 allocations) costs ~15% of kernel wall time at
  population scale.  :meth:`Simulator.run` therefore disables the
  cyclic collector for the duration of the loop and runs one
  generation-1 collection every ``_GC_EVENT_BATCH`` dispatched events.
  Generation 1 (not a full sweep) matters at scale: survivors are
  promoted to generation 2 and never re-scanned, so each periodic
  collection only walks objects allocated since the previous one — a
  traced run retains ~1M span rows, and full sweeps would re-walk all
  of them every batch.  Young cycles (aborted generator frames,
  exception tracebacks) are still reclaimed, which bounds garbage
  accumulation.  Pure memory management: simulation results are
  identical either way, and a caller that already disabled GC is left
  alone.
"""

from __future__ import annotations

import gc as _gc
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "Simulator",
    "AnyOf",
    "AllOf",
    "SimulationError",
    "StopSimulation",
]

#: Sentinel for "this event has not been triggered yet".
_PENDING = object()

#: Scheduling priority for events triggered "right now" (e.g. succeed()).
URGENT = 0
#: Scheduling priority for ordinary timed events.
NORMAL = 1

#: Dispatched events between generation-1 cyclic-GC collections inside
#: :meth:`Simulator.run` (see "Batched cyclic GC" in the module
#: docstring).  ~250k events is a few seconds of 10k-user simulation
#: and tens of MB of uncollected cycles at most.
_GC_EVENT_BATCH = 250_000


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Simulator.run` at a target event."""

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The interrupting party may attach an arbitrary ``cause``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Interrupt(cause={self.cause!r})"


class Event:
    """A one-shot occurrence that processes can wait for.

    An event starts *pending*; it is *triggered* exactly once via
    :meth:`succeed` or :meth:`fail`, after which its callbacks run at the
    current simulation time.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        #: Callables ``cb(event)`` invoked when the event is processed.
        #: Set to ``None`` once processed.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._defused = False

    @property
    def triggered(self) -> bool:
        """Whether the event already has a value (success or failure)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already been run."""
        return self.callbacks is None

    @property
    def ok(self) -> Optional[bool]:
        """True on success, False on failure, None while pending."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if the event is still pending."""
        if self._value is _PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        sim = self.sim
        sim._seq = seq = sim._seq + 1
        heappush(sim._heap, (sim._now, URGENT, seq, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes get the exception thrown into them.  If nobody
        ever waits on a failed event the simulator re-raises it, unless
        :meth:`defused` was called.
        """
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        sim = self.sim
        sim._seq = seq = sim._seq + 1
        heappush(sim._heap, (sim._now, URGENT, seq, self))
        return self

    def defuse(self) -> None:
        """Mark a failure as handled so the simulator does not re-raise."""
        self._defused = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after a fixed delay.

    Construction is flattened (no ``super().__init__`` chain): a timeout
    is born triggered-but-unprocessed and goes straight onto the heap.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        sim._seq = seq = sim._seq + 1
        heappush(sim._heap, (sim._now + delay, NORMAL, seq, self))


class _Deferred:
    """A bare scheduled callback: one heap entry, no Event machinery.

    Dispatch calls ``fn()`` directly — no callbacks list is allocated,
    no value/failure bookkeeping happens.  Used for high-churn timers
    (the processor-sharing server re-arms one per state change) where
    superseded entries are lazily discarded by their own ``fn``.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[], None]):
        self.fn = fn


class _Initialize(Event):
    """Internal event used to start a process on the next step."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process"):
        self.sim = sim
        self.callbacks = [process._presume]
        self._value = None
        self._ok = True
        self._defused = False
        sim._seq = seq = sim._seq + 1
        heappush(sim._heap, (sim._now, URGENT, seq, self))


class Process(Event):
    """A generator-based coroutine driven by the simulator.

    The generator yields :class:`Event` instances; the process resumes
    when the yielded event triggers.  A process is itself an event that
    triggers with the generator's return value, so processes can wait on
    each other (this is how synchronous RPC between tiers is modelled).
    """

    __slots__ = ("_generator", "_target", "_presume")

    def __init__(self, sim: "Simulator", generator: Generator):
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"process() requires a generator, got {generator!r}"
            )
        super().__init__(sim)
        self._generator = generator
        # The bound resume callback is cached once: every event wait
        # registers it, and binding a method per wait is measurable at
        # kernel scale.
        self._presume = self._resume
        self._target: Optional[Event] = _Initialize(sim, self)

    @property
    def is_alive(self) -> bool:
        """Whether the process has not yet terminated."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process.

        The interrupt is delivered immediately (at the current simulation
        time).  Interrupting a dead process is an error.
        """
        if self.triggered:
            raise SimulationError("cannot interrupt a terminated process")
        # Detach from whatever the process is waiting on so the stale
        # resume callback never fires.
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._presume)
            except ValueError:
                pass
        self._target = None
        failure = Event(self.sim)
        failure.callbacks.append(self._presume)
        failure._ok = False
        failure._value = Interrupt(cause)
        failure._defused = True
        self.sim._schedule(failure, self.sim._now, URGENT)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        sim = self.sim
        generator = self._generator
        presume = self._presume
        sim._active_process = self
        while True:
            try:
                if event is None or event._ok:
                    value = None if event is None else event._value
                    target = generator.send(value)
                else:
                    event._defused = True
                    target = generator.throw(event._value)
            except StopIteration as stop:
                sim._active_process = None
                self.succeed(stop.value)
                return
            except BaseException as exc:
                sim._active_process = None
                self.fail(exc)
                return

            # Fast path: yielded events are overwhelmingly pending or
            # freshly triggered (Timeouts are born triggered) — both
            # cases register the resume callback and park the process.
            try:
                callbacks = target.callbacks
            except AttributeError:
                callbacks = None
            if callbacks is not None:
                callbacks.append(presume)
                self._target = target
                sim._active_process = None
                return
            if isinstance(target, Event):
                # Already triggered and processed: resume synchronously.
                event = target
                continue

            sim._active_process = None
            exc = SimulationError(
                f"process yielded a non-event: {target!r}"
            )
            # Deliver the error to the generator so it can clean up.
            generator.throw(exc)
            raise exc


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._count = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("events belong to different simulators")
            if ev.processed:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _collect(self) -> dict:
        return {
            ev: ev._value
            for ev in self.events
            if ev.triggered and ev._ok
        }

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(_Condition):
    """Triggers as soon as any of the given events triggers."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed(self._collect())


class AllOf(_Condition):
    """Triggers once all of the given events have triggered."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed(self._collect())


class Simulator:
    """The discrete-event simulation core: clock plus event heap.

    A single optional *hooks* object (see :meth:`attach_hooks`) lets an
    observer — e.g. :class:`repro.obs.bus.KernelProfiler` — watch every
    event dispatch and process spawn.  With no hooks attached the cost
    is one ``None`` check per event.
    """

    def __init__(self):
        self._now = 0.0
        self._heap: List[tuple] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        self._hooks: Optional[Any] = None
        self._hook_stride = 1
        self._hook_countdown = 1

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event construction helpers ------------------------------------

    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def timeout_batch(
        self, delays: Iterable[float], value: Any = None
    ) -> List[Timeout]:
        """Create one timeout per delay, scheduled back-to-back.

        Equivalent to ``[sim.timeout(d, value) for d in delays]`` — the
        timeouts receive consecutive sequence numbers, so relative FIFO
        order among them (and against everything else) is identical to
        the loop form.  Exists so synchronized fan-outs (population
        start staggering, lock-step burst edges) have one audited
        batching point.
        """
        return [Timeout(self, d, value) for d in delays]

    def process(self, generator: Generator) -> Process:
        """Start a new :class:`Process` driving ``generator``."""
        proc = Process(self, generator)
        if self._hooks is not None:
            self._hooks.on_process(proc)
        return proc

    # -- observability hooks ---------------------------------------------

    @property
    def hooks(self) -> Optional[Any]:
        """The attached kernel hooks object, if any."""
        return self._hooks

    def attach_hooks(self, hooks: Any) -> None:
        """Attach a kernel observer.

        ``hooks`` must provide ``on_events(count, now, heap_len)`` and
        ``on_process(process)``; an optional ``on_attach(sim)`` runs
        immediately.  ``on_events`` is *batched*: the dispatch loop
        calls it once every ``hooks.event_stride`` dispatched events
        (default 1) with the exact number of events since the previous
        call, plus once more with the remainder when :meth:`run`
        returns — so cumulative event counts are exact while the
        per-event cost stays a couple of integer operations.  Hooks
        observe only — they must not mutate the schedule — so attaching
        them never changes simulation results.
        """
        if self._hooks is not None:
            raise SimulationError("hooks are already attached")
        on_events = getattr(hooks, "on_events", None)
        if on_events is None:
            raise SimulationError(
                "hooks object must provide on_events(count, now, heap_len)"
            )
        stride = int(getattr(hooks, "event_stride", 1) or 1)
        if stride < 1:
            raise SimulationError(f"event_stride must be >= 1: {stride}")
        self._hooks = hooks
        self._hook_stride = stride
        self._hook_countdown = stride
        on_attach = getattr(hooks, "on_attach", None)
        if on_attach is not None:
            on_attach(self)

    def detach_hooks(self) -> None:
        """Remove the attached kernel observer (no-op if none)."""
        self._flush_hook_events()
        self._hooks = None
        self._hook_stride = 1
        self._hook_countdown = 1

    def _flush_hook_events(self) -> None:
        """Report any not-yet-reported events to the hooks object."""
        hooks = self._hooks
        if hooks is None:
            return
        pending = self._hook_stride - self._hook_countdown
        if pending:
            self._hook_countdown = self._hook_stride
            hooks.on_events(pending, self._now, len(self._heap))

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event triggering when any input event triggers."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event triggering when all input events trigger."""
        return AllOf(self, events)

    def call_at(self, time: float, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` at absolute simulation time ``time``.

        Returns the scheduling :class:`Event` (waitable).  For fire-and-
        forget timers on the hot path prefer :meth:`defer_at`.
        """
        if time < self._now:
            raise SimulationError(
                f"call_at({time}) is in the past (now={self._now})"
            )
        ev = Event(self)
        ev._ok = True
        ev._value = None
        ev.callbacks.append(lambda _ev: fn())
        self._schedule(ev, time, NORMAL)
        return ev

    def call_in(self, delay: float, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` after ``delay`` seconds."""
        return self.call_at(self._now + delay, fn)

    def defer_at(self, time: float, fn: Callable[[], None]) -> None:
        """Schedule bare ``fn()`` at absolute time ``time`` (not waitable).

        The cheap sibling of :meth:`call_at`: one heap entry, no Event.
        Scheduling order relative to every other entry is identical to
        ``call_at`` (same priority, same sequence counter).
        """
        if time < self._now:
            raise SimulationError(
                f"defer_at({time}) is in the past (now={self._now})"
            )
        self._seq = seq = self._seq + 1
        heappush(self._heap, (time, NORMAL, seq, _Deferred(fn)))

    def defer_in(self, delay: float, fn: Callable[[], None]) -> None:
        """Schedule bare ``fn()`` after ``delay`` seconds (not waitable)."""
        self.defer_at(self._now + delay, fn)

    # -- scheduling / main loop ----------------------------------------

    def _schedule(self, event: Event, time: float, priority: int) -> None:
        self._seq = seq = self._seq + 1
        heappush(self._heap, (time, priority, seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process the single next event.

        NOTE: the dispatch body is inlined (with loop-hoisted locals)
        in each of :meth:`run`'s three loops; keep them in sync.
        """
        if not self._heap:
            raise SimulationError("step() on an empty schedule")
        time, _priority, _seq, event = heappop(self._heap)
        self._now = time
        if self._hooks is not None:
            countdown = self._hook_countdown - 1
            if countdown:
                self._hook_countdown = countdown
            else:
                self._hook_countdown = self._hook_stride
                self._hooks.on_events(
                    self._hook_stride, time, len(self._heap)
                )
        if event.__class__ is _Deferred:
            event.fn()
            return
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # A failure nobody handled: surface it instead of silently
            # dropping the exception.
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the schedule drains), a
        number (run until that simulation time), or an :class:`Event`
        (run until it triggers, returning its value).
        """
        manage_gc = _gc.isenabled()
        if manage_gc:
            _gc.disable()
        try:
            return self._run(until)
        finally:
            self._flush_hook_events()
            if manage_gc:
                _gc.enable()

    def _run(self, until: Any) -> Any:
        heap = self._heap
        pop = heappop
        deferred = _Deferred
        budget = _GC_EVENT_BATCH

        if until is None:
            while heap:
                entry = pop(heap)
                event = entry[3]
                self._now = entry[0]
                if self._hooks is not None:
                    countdown = self._hook_countdown - 1
                    if countdown:
                        self._hook_countdown = countdown
                    else:
                        self._hook_countdown = self._hook_stride
                        self._hooks.on_events(
                            self._hook_stride, entry[0], len(heap)
                        )
                budget -= 1
                if not budget:
                    _gc.collect(1)
                    budget = _GC_EVENT_BATCH
                if event.__class__ is deferred:
                    event.fn()
                    continue
                callbacks = event.callbacks
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value
            return None

        if isinstance(until, Event):
            if until.triggered:
                # Still drain same-time callbacks for determinism.
                return until.value if until._ok else None

            def _stop(event: Event) -> None:
                raise StopSimulation(event)

            until.callbacks.append(_stop)
            try:
                while heap:
                    entry = pop(heap)
                    event = entry[3]
                    self._now = entry[0]
                    if self._hooks is not None:
                        self._hooks.on_event(event, entry[0], len(heap))
                    budget -= 1
                    if not budget:
                        _gc.collect(1)
                        budget = _GC_EVENT_BATCH
                    if event.__class__ is deferred:
                        event.fn()
                        continue
                    callbacks = event.callbacks
                    event.callbacks = None
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        raise event._value
            except StopSimulation:
                if not until._ok:
                    until._defused = True
                    raise until._value
                return until._value
            raise SimulationError(
                "schedule drained before the target event triggered"
            )

        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(
                f"run(until={horizon}) is in the past (now={self._now})"
            )
        while heap and heap[0][0] <= horizon:
            entry = pop(heap)
            event = entry[3]
            self._now = entry[0]
            if self._hooks is not None:
                countdown = self._hook_countdown - 1
                if countdown:
                    self._hook_countdown = countdown
                else:
                    self._hook_countdown = self._hook_stride
                    self._hooks.on_events(
                        self._hook_stride, entry[0], len(heap)
                    )
            budget -= 1
            if not budget:
                _gc.collect(1)
                budget = _GC_EVENT_BATCH
            if event.__class__ is deferred:
                event.fn()
                continue
            callbacks = event.callbacks
            event.callbacks = None
            for callback in callbacks:
                callback(event)
            if not event._ok and not event._defused:
                raise event._value
        self._now = horizon
        return None
