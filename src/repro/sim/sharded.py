"""Sharded parallel DES: conservative safe-window synchronization.

The kernel-side half of the multi-host datacenter runner
(:mod:`repro.experiments.datacenter`): each simulated host runs its own
:class:`~repro.sim.core.Simulator` — in a dedicated worker process when
sharded, or side by side in one simulator when not — and cross-host
RPCs travel as timestamped event messages over per-link ordered
channels.

The synchronization protocol (DESIGN.md §12, proof sketch there):

* Every cross-shard link guarantees a *lookahead* ``L``: a message
  sent at time ``s`` delivers no earlier than ``s + L`` (serialization
  through idle queues plus propagation; load only adds delay).
* All shards advance in lock-step windows of width
  ``W = min L over every cross-shard link``.  Window ``k`` covers the
  half-open interval ``(t_{k-1}, t_k]`` — ``run(until=h)`` executes
  events with timestamp ``<= h``, so an event at exactly ``t_{k-1}``
  ran in the previous window.
* Every send in window ``k`` happens at ``s > t_{k-1}``, hence delivers
  at ``>= s + L > t_{k-1} + W = t_k`` — strictly inside a *future*
  window.  Exchanging each link's buffered frame once per window
  boundary (an empty frame doubles as the null message) therefore
  injects every remote event before the window that must dispatch it.
* Within one link, delivery timestamps are strictly increasing (the
  link's serialization horizon is monotone), so per-link frames are
  ordered; across links, received events are sorted by
  ``(delivery time, link rank, intra-frame index)`` before injection.

Exchange is symmetric — every shard sends on all its outgoing links,
then receives on all its incoming links, once per window — so the
blocking reads cannot deadlock as long as frames stay smaller than the
pipe buffer (they are a handful of tuples per window).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, List, Optional, Sequence, Tuple

from .core import Simulator

__all__ = [
    "EventCounter",
    "FrameChannel",
    "LocalChannel",
    "ShardRunner",
    "ShardWindow",
]


class EventCounter:
    """Kernel hooks object counting dispatched events exactly.

    The sharded acceptance gate: the *sum* of per-shard counts must
    equal the single-process run's count.  ``on_events`` is batched
    (stride) but the kernel flushes the remainder on every ``run``
    return, so cumulative counts are exact whenever the simulator is
    between runs — which is exactly when the window loop reads them.
    """

    event_stride = 512

    def __init__(self) -> None:
        self.count = 0

    def on_events(self, count: int, now: float, pending: int) -> None:
        self.count += count

    def on_process(self, process: Any) -> None:
        return None


@dataclass(frozen=True)
class ShardWindow:
    """One shard's progress report, published on ``shard.window``."""

    shard: int
    host: str
    #: 1-based window index (== completed windows).
    index: int
    #: Simulation time the shard has advanced to.
    now: float
    #: Cumulative dispatched events on this shard.
    events: int
    #: Cumulative cross-shard messages sent / received.
    sent: int
    received: int


class LocalChannel:
    """A cross-host channel inside one shared simulator.

    The unsharded reference mode: ``send`` computes the delivery
    timestamp through the link's serialization horizon and schedules
    the handler directly on the destination simulator's timed queue —
    the exact entry the sharded mode later reproduces via
    :meth:`Simulator.inject` at a window boundary.
    """

    def __init__(self, link: Any, dst_sim: Simulator):
        self.link = link
        self.dst_sim = dst_sim
        self._handler: Optional[Callable[[Any], None]] = None
        self.sent = 0

    def bind(self, handler: Callable[[Any], None]) -> None:
        self._handler = handler

    def send(self, now: float, payload: Any) -> None:
        self.sent += 1
        self.dst_sim.defer_at(
            self.link.delivery_time(now), partial(self._handler, payload)
        )


class FrameChannel:
    """A cross-host channel buffering sends into a per-window frame.

    The sharded mode: ``send`` stamps each payload with its delivery
    timestamp (same link arithmetic as :class:`LocalChannel`) and
    appends it to the current frame; the window loop drains the frame
    into the transport at each boundary.  On the receiving side the
    bound handler is invoked by the injected timer.
    """

    def __init__(self, link: Any):
        self.link = link
        self._frame: List[Tuple[float, Any]] = []
        self._handler: Optional[Callable[[Any], None]] = None
        self.sent = 0

    def bind(self, handler: Callable[[Any], None]) -> None:
        self._handler = handler

    def send(self, now: float, payload: Any) -> None:
        self.sent += 1
        self._frame.append((self.link.delivery_time(now), payload))

    def drain(self) -> List[Tuple[float, Any]]:
        frame = self._frame
        self._frame = []
        return frame

    def deliver(self, payload: Any) -> None:
        self._handler(payload)


class ShardRunner:
    """One shard's lock-step window loop.

    ``outgoing`` / ``incoming`` pair each channel with its transport
    (any object with ``send(obj)`` / ``recv()`` — a multiprocessing
    ``Connection`` in production, a queue shim in tests).  **Ordering
    contract:** ``incoming`` must list channels in the same global
    rank order on every shard and every run — the rank is the
    cross-link tie-breaker for simultaneous deliveries.
    """

    def __init__(
        self,
        sim: Simulator,
        duration: float,
        window: float,
        outgoing: Sequence[Tuple[Any, FrameChannel]],
        incoming: Sequence[Tuple[Any, Any]],
        on_window: Optional[Callable[[int, float, int, int], None]] = None,
        window_stride: int = 1,
    ):
        if window <= 0:
            raise ValueError(f"window must be positive: {window}")
        if duration <= 0:
            raise ValueError(f"duration must be positive: {duration}")
        self.sim = sim
        self.duration = duration
        self.window = window
        self.outgoing = list(outgoing)
        self.incoming = list(incoming)
        self.on_window = on_window
        self.window_stride = max(1, int(window_stride))
        self.windows = 0
        self.sent = 0
        self.received = 0

    def run(self) -> None:
        """Advance to ``duration`` in lock-step safe windows."""
        sim = self.sim
        inject = sim.inject
        duration = self.duration
        width = self.window
        on_window = self.on_window
        stride = self.window_stride
        t = 0.0
        index = 0
        while t < duration:
            t_end = t + width
            if t_end > duration:
                t_end = duration
            sim.run(until=t_end)
            # Send-all, then receive-all: the symmetric exchange that
            # doubles as the null-message barrier.
            for transport, channel in self.outgoing:
                frame = channel.drain()
                self.sent += len(frame)
                transport.send(frame)
            staged: List[Tuple[float, int, int, Any, Any]] = []
            for rank, (transport, channel) in enumerate(self.incoming):
                frame = transport.recv()
                self.received += len(frame)
                deliver = channel.deliver
                for idx, (time, payload) in enumerate(frame):
                    staged.append((time, rank, idx, deliver, payload))
            if staged:
                if len(staged) > 1:
                    staged.sort(key=_stage_key)
                # inject refuses timestamps before t_end — a violation
                # of the lookahead bound aborts loudly instead of
                # silently reordering dispatch.
                for time, _, _, deliver, payload in staged:
                    inject(time, partial(deliver, payload))
            index += 1
            t = t_end
            if on_window is not None and (
                index % stride == 0 or t >= duration
            ):
                on_window(index, t, self.sent, self.received)
        self.windows = index


def _stage_key(entry: Tuple) -> Tuple[float, int, int]:
    return (entry[0], entry[1], entry[2])
