"""Sharded parallel DES: conservative safe-window synchronization.

The kernel-side half of the multi-host datacenter runner
(:mod:`repro.experiments.datacenter`): each simulated host runs its own
:class:`~repro.sim.core.Simulator` — in a dedicated worker process when
sharded, or side by side in one simulator when not — and cross-host
RPCs travel as timestamped event messages over per-link ordered
channels.

Two synchronization modes share one runner (DESIGN.md §12, proof
sketches there):

**Fixed windows** (the PR-9 protocol, still the reference):

* Every cross-shard link guarantees a *lookahead* ``L``: a message
  sent at time ``s`` delivers no earlier than ``s + L`` (serialization
  through idle queues plus propagation; load only adds delay).
* All shards advance in lock-step windows of width
  ``W = min L over every cross-shard link``.  Window ``k`` covers the
  half-open interval ``(t_{k-1}, t_k]`` — ``run(until=h)`` executes
  events with timestamp ``<= h``, so an event at exactly ``t_{k-1}``
  ran in the previous window.
* Every send in window ``k`` happens at ``s > t_{k-1}``, hence delivers
  at ``>= s + L > t_{k-1} + W = t_k`` — strictly inside a *future*
  window.  Exchanging each link's buffered frame once per window
  boundary (an empty frame doubles as the null message) therefore
  injects every remote event before the window that must dispatch it.

**Adaptive windows** (``adaptive=True``): instead of one global width,
every frame header carries a per-link *promise* — a strict lower bound
on the delivery time of every message in any *future* frame on that
link.  A shard's safe horizon is the minimum promise over its live
inbound links; it widens its next window to the largest integer
multiple of the base width ``W`` below that horizon (capped at the
horizon itself — promises are strict, so running *to* the bound is
safe).  Promises are renegotiated in every header from the sender's
clock, its next pending local event (``Simulator.peek``) and its own
inbound horizon, so all shards agree on the schedule deterministically,
without wall-clock input.  Senders additionally declare ``skip`` — how
many lock-step rounds they will stay silent on a link — which thins
the exchange on wide links; termination is a final-flag handshake
(a shard that reached the duration promises ``+inf`` and marks the
link closed; the peer stops receiving on it).

In both modes: within one link, delivery timestamps are
non-decreasing (the link's serialization horizon is monotone), so
per-link frames are ordered; across links, received events are sorted
by ``(delivery time, link rank, intra-frame index)`` before injection.
Exchange is symmetric — every shard sends on all its due outgoing
links, then receives on all its due incoming links, once per round —
so the blocking reads cannot deadlock as long as frames stay smaller
than the pipe buffer.

**Wire formats** — a transport is anything with ``send(obj)`` /
``recv()`` (a multiprocessing ``Connection``, a queue shim in tests):

* pickle wire, fixed mode: the bare frame list (PR-9 compatible);
* pickle wire, adaptive mode: ``(promise, clock, flags, skip, frame)``;
* packed wire (``packed=True``): one :class:`FrameCodec` byte buffer
  per frame — a struct-packed header plus per-message rows with all
  repeated strings (page names, demand-key shapes, tier names)
  interned per link, so the ``Connection`` hot path serializes one
  ``bytes`` object per window instead of pickling every RPC tuple.
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass
from functools import partial
from math import inf
from typing import Any, Callable, List, Optional, Sequence, Tuple

from .core import Simulator

__all__ = [
    "EventCounter",
    "FrameChannel",
    "FrameCodec",
    "LocalChannel",
    "PackedConnection",
    "ShardRunner",
    "ShardWindow",
]


class EventCounter:
    """Kernel hooks object counting dispatched events exactly.

    The sharded acceptance gate: the *sum* of per-shard counts must
    equal the single-process run's count.  ``on_events`` is batched
    (stride) but the kernel flushes the remainder on every ``run``
    return, so cumulative counts are exact whenever the simulator is
    between runs — which is exactly when the window loop reads them.
    """

    event_stride = 512

    def __init__(self) -> None:
        self.count = 0

    def on_events(self, count: int, now: float, pending: int) -> None:
        self.count += count

    def on_process(self, process: Any) -> None:
        return None


@dataclass(frozen=True)
class ShardWindow:
    """One shard's progress report, published on ``shard.window``."""

    shard: int
    host: str
    #: 1-based exchange-round index (== completed rounds).
    index: int
    #: Simulation time the shard has advanced to.
    now: float
    #: Cumulative dispatched events on this shard.
    events: int
    #: Cumulative cross-shard messages sent / received.
    sent: int
    received: int


class LocalChannel:
    """A cross-host channel inside one shared simulator.

    The unsharded reference mode: ``send`` computes the delivery
    timestamp through the link's serialization horizon and schedules
    the handler directly on the destination simulator's timed queue —
    the exact entry the sharded mode later reproduces via
    :meth:`Simulator.inject` at a window boundary.
    """

    def __init__(self, link: Any, dst_sim: Simulator):
        self.link = link
        self.dst_sim = dst_sim
        self._handler: Optional[Callable[[Any], None]] = None
        self.sent = 0

    def bind(self, handler: Callable[[Any], None]) -> None:
        self._handler = handler

    def send(self, now: float, payload: Any) -> None:
        self.sent += 1
        self.dst_sim.defer_at(
            self.link.delivery_time(now), partial(self._handler, payload)
        )


class FrameChannel:
    """A cross-host channel buffering sends into a per-window frame.

    The sharded mode: ``send`` stamps each payload with its delivery
    timestamp (same link arithmetic as :class:`LocalChannel`) and
    appends it to the current frame; the window loop drains the frame
    into the transport at each boundary.  On the receiving side the
    bound handler is invoked by the injected timer.
    """

    _EMPTY: Tuple = ()

    def __init__(self, link: Any):
        self.link = link
        self._frame: List[Tuple[float, Any]] = []
        self._handler: Optional[Callable[[Any], None]] = None
        self.sent = 0

    def bind(self, handler: Callable[[Any], None]) -> None:
        self._handler = handler

    def send(self, now: float, payload: Any) -> None:
        self.sent += 1
        self._frame.append((self.link.delivery_time(now), payload))

    def drain(self) -> Sequence[Tuple[float, Any]]:
        frame = self._frame
        if not frame:
            # Empty-exchange fast path: no list churn for null frames.
            return self._EMPTY
        self._frame = []
        return frame

    def deliver(self, payload: Any) -> None:
        self._handler(payload)


# -- packed frame transport -------------------------------------------------

#: Header: promise, clock (doubles), flags (u8), skip (u16), messages (u32).
_HEADER = struct.Struct("<ddBHI")
_STR_COUNT = struct.Struct("<H")
_CALL = struct.Struct("<BdqqdHHB")  # kind t call_id rid weight page shape n
_REPLY_HEAD = struct.Struct("<BdqB")  # kind t call_id n_tiers
_TIER_HEAD = struct.Struct("<HI")  # tier_id n_spans
_ERR = struct.Struct("<BdqH")  # kind t call_id tier_id
_RAW_HEAD = struct.Struct("<BdI")  # kind t length

FLAG_FINAL = 0x01

_KIND_RAW = 0
_KIND_CALL = 1
_KIND_REPLY = 2
_KIND_ERR = 3

#: Demand-key shapes are interned as one string (keys joined by US).
_SHAPE_SEP = "\x1f"

#: Interned-string ids are u16; past that a message falls back to raw.
_MAX_INTERN = 0xFFFF


class FrameCodec:
    """Stateful per-link frame codec: struct rows + string interning.

    One encoder instance lives on the sending end of a link, one
    decoder instance on the receiving end; both build the same
    append-only string table (page names, demand-key shapes, tier
    names) because every frame's *new strings* section is decoded in
    order before its message rows.  Message payloads are the exact
    tuples :mod:`repro.ntier.remote` exchanges — recognized
    structurally, everything else round-trips through a pickle row, so
    the codec stays payload-agnostic for tests and future frame kinds.

    Floats travel as IEEE doubles and ints as int64, so decoded
    payloads are *equal* to the originals — the byte-identity
    determinism contract does not care which wire carried the frame.
    """

    def __init__(self) -> None:
        self._ids: dict = {}
        self._strings: List[str] = []
        self.frames = 0
        self.messages = 0
        self.bytes = 0

    # -- encoding ------------------------------------------------------

    def _intern(self, text: str, fresh: List[str]) -> Optional[int]:
        ident = self._ids.get(text)
        if ident is None:
            ident = len(self._ids)
            if ident > _MAX_INTERN:
                return None
            self._ids[text] = ident
            fresh.append(text)
        return ident

    def _pack_message(
        self, time: float, payload: Any, fresh: List[str]
    ) -> bytes:
        if type(payload) is tuple:
            n = len(payload)
            if n == 5:
                call_id, rid, page, demands, weight = payload
                if (
                    type(call_id) is int
                    and type(rid) is int
                    and type(page) is str
                    and type(demands) is dict
                    and type(weight) is float
                    and all(type(v) is float for v in demands.values())
                ):
                    keys = list(demands.keys())
                    page_id = self._intern(page, fresh)
                    shape_id = self._intern(_SHAPE_SEP.join(keys), fresh)
                    if (
                        page_id is not None
                        and shape_id is not None
                        and len(keys) <= 0xFF
                    ):
                        return _CALL.pack(
                            _KIND_CALL,
                            time,
                            call_id,
                            rid,
                            weight,
                            page_id,
                            shape_id,
                            len(keys),
                        ) + struct.pack(
                            f"<{len(keys)}d", *demands.values()
                        )
            elif n == 3:
                call_id, ok, body = payload
                if type(call_id) is int:
                    if ok is True and type(body) is list:
                        packed = self._pack_reply(
                            time, call_id, body, fresh
                        )
                        if packed is not None:
                            return packed
                    elif ok is False and type(body) is str:
                        tier_id = self._intern(body, fresh)
                        if tier_id is not None:
                            return _ERR.pack(
                                _KIND_ERR, time, call_id, tier_id
                            )
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        return _RAW_HEAD.pack(_KIND_RAW, time, len(blob)) + blob

    def _pack_reply(
        self,
        time: float,
        call_id: int,
        body: List,
        fresh: List[str],
    ) -> Optional[bytes]:
        if len(body) > 0xFF:
            return None
        parts = [_REPLY_HEAD.pack(_KIND_REPLY, time, call_id, len(body))]
        for entry in body:
            if type(entry) is not tuple or len(entry) != 2:
                return None
            tier, spans = entry
            if type(tier) is not str or type(spans) is not list:
                return None
            flat: List[float] = []
            for span in spans:
                if (
                    type(span) is not tuple
                    or len(span) != 2
                    or type(span[0]) is not float
                    or type(span[1]) is not float
                ):
                    return None
                flat.append(span[0])
                flat.append(span[1])
            tier_id = self._intern(tier, fresh)
            if tier_id is None:
                return None
            parts.append(_TIER_HEAD.pack(tier_id, len(spans)))
            if flat:
                parts.append(struct.pack(f"<{len(flat)}d", *flat))
        return b"".join(parts)

    def encode(
        self,
        promise: float,
        clock: float,
        flags: int,
        skip: int,
        frame: Sequence[Tuple[float, Any]],
    ) -> bytes:
        """Pack one frame (header + interned strings + message rows)."""
        fresh: List[str] = []
        rows = [
            self._pack_message(time, payload, fresh)
            for time, payload in frame
        ]
        strings = [_STR_COUNT.pack(len(fresh))]
        for text in fresh:
            raw = text.encode("utf-8")
            strings.append(_STR_COUNT.pack(len(raw)))
            strings.append(raw)
        buf = b"".join(
            [_HEADER.pack(promise, clock, flags, skip, len(frame))]
            + strings
            + rows
        )
        self.frames += 1
        self.messages += len(frame)
        self.bytes += len(buf)
        return buf

    # -- decoding ------------------------------------------------------

    def decode(
        self, buf: bytes
    ) -> Tuple[float, float, int, int, List[Tuple[float, Any]]]:
        """Unpack one frame; returns ``(promise, clock, flags, skip,
        [(delivery_time, payload), ...])`` with payloads equal to the
        originals."""
        promise, clock, flags, skip, count = _HEADER.unpack_from(buf, 0)
        pos = _HEADER.size
        (n_fresh,) = _STR_COUNT.unpack_from(buf, pos)
        pos += _STR_COUNT.size
        strings = self._strings
        for _ in range(n_fresh):
            (length,) = _STR_COUNT.unpack_from(buf, pos)
            pos += _STR_COUNT.size
            strings.append(buf[pos : pos + length].decode("utf-8"))
            pos += length
        entries: List[Tuple[float, Any]] = []
        for _ in range(count):
            kind = buf[pos]
            if kind == _KIND_CALL:
                (
                    _,
                    time,
                    call_id,
                    rid,
                    weight,
                    page_id,
                    shape_id,
                    n_keys,
                ) = _CALL.unpack_from(buf, pos)
                pos += _CALL.size
                values = struct.unpack_from(f"<{n_keys}d", buf, pos)
                pos += 8 * n_keys
                shape = strings[shape_id]
                keys = shape.split(_SHAPE_SEP) if shape else []
                payload: Any = (
                    call_id,
                    rid,
                    strings[page_id],
                    dict(zip(keys, values)),
                    weight,
                )
            elif kind == _KIND_REPLY:
                _, time, call_id, n_tiers = _REPLY_HEAD.unpack_from(
                    buf, pos
                )
                pos += _REPLY_HEAD.size
                body: List[Tuple[str, List[Tuple[float, float]]]] = []
                for _ in range(n_tiers):
                    tier_id, n_spans = _TIER_HEAD.unpack_from(buf, pos)
                    pos += _TIER_HEAD.size
                    flat = struct.unpack_from(f"<{2 * n_spans}d", buf, pos)
                    pos += 16 * n_spans
                    body.append(
                        (
                            strings[tier_id],
                            [
                                (flat[i], flat[i + 1])
                                for i in range(0, len(flat), 2)
                            ],
                        )
                    )
                payload = (call_id, True, body)
            elif kind == _KIND_ERR:
                _, time, call_id, tier_id = _ERR.unpack_from(buf, pos)
                pos += _ERR.size
                payload = (call_id, False, strings[tier_id])
            else:
                _, time, length = _RAW_HEAD.unpack_from(buf, pos)
                pos += _RAW_HEAD.size
                payload = pickle.loads(buf[pos : pos + length])
                pos += length
            entries.append((time, payload))
        return promise, clock, flags, skip, entries


class PackedConnection:
    """Adapter: a multiprocessing ``Connection`` as a bytes transport.

    ``send_bytes``/``recv_bytes`` skip the pickler entirely — the
    :class:`FrameCodec` buffer goes down the pipe as one raw blob.
    """

    __slots__ = ("conn",)

    def __init__(self, conn: Any):
        self.conn = conn

    def send(self, buf: bytes) -> None:
        self.conn.send_bytes(buf)

    def recv(self) -> bytes:
        return self.conn.recv_bytes()


# -- the runner -------------------------------------------------------------

#: Upper bound on declared per-link silence, in lock-step rounds.
MAX_SKIP = 4

#: Relative strictness guard on promises derived from a pending-event
#: peek: a send *at* the peeked time plus sequential stage arithmetic
#: can land a hair under ``peek + lookahead`` in floats, so the promise
#: backs off by a sliver of the base window (versus float noise of
#: ~1e-14 absolute, a 100x-plus margin at millisecond windows).
_PEEK_GUARD = 1e-9


class ShardRunner:
    """One shard's lock-step exchange loop (fixed or adaptive windows).

    ``outgoing`` / ``incoming`` pair each channel with its transport
    (any object with ``send(obj)`` / ``recv()`` — a multiprocessing
    ``Connection`` in production, a queue shim in tests).  **Ordering
    contract:** ``incoming`` must list channels in the same global
    rank order on every shard and every run — the rank is the
    cross-link tie-breaker for simultaneous deliveries.

    ``adaptive=True`` switches to the promise-driven protocol described
    in the module docstring; ``packed=True`` routes frames through a
    per-link :class:`FrameCodec` (transports then carry ``bytes``).
    ``reverse`` optionally maps each outgoing-link index to the
    incoming-link index of the same host pair — required only for the
    silence (``skip``) policy, which stays off without it.
    """

    def __init__(
        self,
        sim: Simulator,
        duration: float,
        window: float,
        outgoing: Sequence[Tuple[Any, FrameChannel]],
        incoming: Sequence[Tuple[Any, Any]],
        on_window: Optional[Callable[[int, float, int, int], None]] = None,
        window_stride: int = 1,
        adaptive: bool = False,
        packed: bool = False,
        reverse: Optional[Sequence[Optional[int]]] = None,
        max_skip: int = MAX_SKIP,
    ):
        if window <= 0:
            raise ValueError(f"window must be positive: {window}")
        if duration <= 0:
            raise ValueError(f"duration must be positive: {duration}")
        self.sim = sim
        self.duration = duration
        self.window = window
        self.outgoing = list(outgoing)
        self.incoming = list(incoming)
        self.on_window = on_window
        self.window_stride = max(1, int(window_stride))
        self.adaptive = adaptive
        self.packed = packed
        self.reverse = list(reverse) if reverse is not None else None
        self.max_skip = max(0, int(max_skip))
        self.windows = 0
        self.sent = 0
        self.received = 0
        #: Frames actually put on / taken off the wire (exchange count).
        self.frames_sent = 0
        self.frames_received = 0
        #: Per-incoming-link delivered message counts (rank order).
        self.received_per_link = [0] * len(self.incoming)
        self._encoders = (
            [FrameCodec() for _ in self.outgoing] if packed else []
        )
        self._decoders = (
            [FrameCodec() for _ in self.incoming] if packed else []
        )

    @property
    def bytes_sent(self) -> int:
        return sum(codec.bytes for codec in self._encoders)

    def run(self) -> None:
        if self.adaptive:
            self._run_adaptive()
        else:
            self._run_fixed()

    # -- fixed windows (PR-9 protocol) ---------------------------------

    def _run_fixed(self) -> None:
        """Advance to ``duration`` in lock-step safe windows."""
        sim = self.sim
        inject = sim.inject
        duration = self.duration
        width = self.window
        on_window = self.on_window
        stride = self.window_stride
        packed = self.packed
        t = 0.0
        index = 0
        while t < duration:
            t_end = t + width
            if t_end > duration:
                t_end = duration
            sim.run(until=t_end)
            # Send-all, then receive-all: the symmetric exchange that
            # doubles as the null-message barrier.
            for i, (transport, channel) in enumerate(self.outgoing):
                frame = channel.drain()
                self.sent += len(frame)
                self.frames_sent += 1
                if packed:
                    transport.send(
                        self._encoders[i].encode(t_end, t_end, 0, 0, frame)
                    )
                else:
                    transport.send(frame)
            staged: List[Tuple[float, int, int, Any, Any]] = []
            for rank, (transport, channel) in enumerate(self.incoming):
                wire = transport.recv()
                self.frames_received += 1
                if packed:
                    _, _, _, _, frame = self._decoders[rank].decode(wire)
                else:
                    frame = wire
                self.received += len(frame)
                self.received_per_link[rank] += len(frame)
                deliver = channel.deliver
                for idx, (time, payload) in enumerate(frame):
                    staged.append((time, rank, idx, deliver, payload))
            if staged:
                if len(staged) > 1:
                    staged.sort(key=_stage_key)
                # inject refuses timestamps before t_end — a violation
                # of the lookahead bound aborts loudly instead of
                # silently reordering dispatch.
                for time, _, _, deliver, payload in staged:
                    inject(time, partial(deliver, payload))
            index += 1
            t = t_end
            if on_window is not None and (
                index % stride == 0 or t >= duration
            ):
                on_window(index, t, self.sent, self.received)
        self.windows = index

    # -- adaptive windows ----------------------------------------------

    def _safe_target(self, t: float, bound: float) -> float:
        """Largest safe horizon: grid multiple of ``W`` capped at the
        inbound promise bound (promises are strict, so ``bound`` itself
        is safe) and the duration."""
        duration = self.duration
        if bound > duration:
            return duration
        width = self.window
        # Tolerance dominates the promise guard so an exactly-one-
        # window bound still yields k == 1; overshoot is harmless (the
        # cap below clamps the target back to the strict bound).
        k = int((bound - t) / width + 10.0 * _PEEK_GUARD)
        if k < 1:
            k = 1
        target = t + k * width
        if target > bound:
            target = bound
        return target

    def _run_adaptive(self) -> None:
        sim = self.sim
        inject = sim.inject
        duration = self.duration
        width = self.window
        on_window = self.on_window
        stride = self.window_stride
        packed = self.packed
        n_out = len(self.outgoing)
        n_in = len(self.incoming)
        reverse = self.reverse
        max_skip = self.max_skip
        guard = _PEEK_GUARD * width

        promise_out = [0.0] * n_out
        next_send = [1] * n_out
        final_sent = [False] * n_out
        bound_in = [0.0] * n_in
        peer_clock = [0.0] * n_in
        next_recv = [1] * n_in
        final_in = [False] * n_in
        open_out = n_out
        open_in = n_in

        t = 0.0
        rounds = 0
        while open_out or open_in:
            bound = inf
            for j in range(n_in):
                if not final_in[j] and bound_in[j] < bound:
                    bound = bound_in[j]
            target = self._safe_target(t, bound)
            if target > t:
                sim.run(until=target)
                t = target
            rounds += 1

            # Send phase: every open link whose schedule is due.  The
            # promise uses the *pre-receive* inbound bound — events
            # injected later this round deliver strictly above it.
            for i in range(n_out):
                if final_sent[i] or next_send[i] != rounds:
                    continue
                transport, channel = self.outgoing[i]
                frame = channel.drain()
                self.sent += len(frame)
                self.frames_sent += 1
                if t >= duration:
                    # No local event below the duration can fire again
                    # (the inbound bound exceeded the duration to get
                    # here, and promises are monotone), so this link is
                    # done: promise infinity and close it.
                    final_sent[i] = True
                    open_out -= 1
                    self._send_frame(
                        transport, i, inf, t, FLAG_FINAL, 0, frame
                    )
                    continue
                # Earliest time any *future* send on this link can
                # happen: the next pending local event or the first
                # delivery a not-yet-received frame could inject
                # (everything at or below the inbound bound is already
                # here).  The guard keeps the promise strict even when
                # a send fires exactly at that time — see _PEEK_GUARD.
                s_min = sim.peek()
                if bound < s_min:
                    s_min = bound
                if s_min < t:
                    s_min = t
                promise = s_min + channel.link.lookahead - guard
                if promise < promise_out[i]:
                    promise = promise_out[i]
                else:
                    promise_out[i] = promise
                skip = 0
                if max_skip and reverse is not None:
                    rev = reverse[i]
                    if rev is not None:
                        # peer_clock is ~two rounds stale (sampled from
                        # last round's frame, acted on next round) and
                        # the peer advances up to one quantum per
                        # round, so discount two quanta: a link at the
                        # base lookahead never skips (skipping would
                        # stall its receiver), a double-width link
                        # skips every other round.
                        skip = int((promise - peer_clock[rev]) / width) - 2
                        if skip < 0:
                            skip = 0
                        elif skip > max_skip:
                            skip = max_skip
                next_send[i] = rounds + 1 + skip
                self._send_frame(transport, i, promise, t, 0, skip, frame)

            # Receive phase: every open link whose sender declared a
            # frame for this round.
            staged: List[Tuple[float, int, int, Any, Any]] = []
            for rank in range(n_in):
                if final_in[rank] or next_recv[rank] != rounds:
                    continue
                transport, channel = self.incoming[rank]
                wire = transport.recv()
                self.frames_received += 1
                if packed:
                    promise, clock, flags, skip, frame = self._decoders[
                        rank
                    ].decode(wire)
                else:
                    promise, clock, flags, skip, frame = wire
                if promise > bound_in[rank]:
                    bound_in[rank] = promise
                peer_clock[rank] = clock
                if flags & FLAG_FINAL:
                    final_in[rank] = True
                    open_in -= 1
                else:
                    next_recv[rank] = rounds + 1 + skip
                self.received += len(frame)
                self.received_per_link[rank] += len(frame)
                deliver = channel.deliver
                for idx, (time, payload) in enumerate(frame):
                    staged.append((time, rank, idx, deliver, payload))
            if staged:
                if len(staged) > 1:
                    staged.sort(key=_stage_key)
                for time, _, _, deliver, payload in staged:
                    inject(time, partial(deliver, payload))

            if on_window is not None and (
                rounds % stride == 0 or not (open_out or open_in)
            ):
                on_window(rounds, t, self.sent, self.received)
        self.windows = rounds

    def _send_frame(
        self,
        transport: Any,
        index: int,
        promise: float,
        clock: float,
        flags: int,
        skip: int,
        frame: Sequence[Tuple[float, Any]],
    ) -> None:
        if self.packed:
            transport.send(
                self._encoders[index].encode(
                    promise, clock, flags, skip, frame
                )
            )
        else:
            transport.send((promise, clock, flags, skip, list(frame)))


def _stage_key(entry: Tuple) -> Tuple[float, int, int]:
    return (entry[0], entry[1], entry[2])
