"""Processor-sharing CPU model.

Each tier VM's CPU is modelled as a processor-sharing (PS) server with
``cores`` vCPUs and a time-varying ``speed`` factor.  Jobs submit an
amount of *work* (CPU-seconds at nominal speed); when ``n`` jobs are
active the total processing rate is ``speed * min(n, cores)`` and is
shared equally, exactly like a multi-core round-robin scheduler at a
fine quantum.

The ``speed`` factor is the hook for the paper's cross-resource
contention: a memory-bandwidth attack on the host does not steal vCPU
cycles (the hypervisor isolates those) but *stalls* them, which we model
as a reduced effective speed.  Crucially, stalled cycles still count as
*busy* to any guest-level utilization monitor — that is why the victim's
CPU "saturates" during a burst even though memory is the contended
resource.  The busy-time integrator therefore charges ``min(n, cores)``
core-seconds per second regardless of ``speed``.

Performance notes (byte-identity constrained).  Every job progresses at
the *same* per-job rate, so between submissions the job with the least
remaining work never changes: IEEE-754 subtraction of a shared progress
increment is monotone, so the argmin is stable under ``_advance`` and
the shortest job can be tracked incrementally in O(1) instead of
rescanned with an O(n) ``min`` on every submission (the old hot-path
cost; completions still rescan, which is unavoidable since the next
shortest must be found).  A full virtual-work offset (store one finish
credit per job at submit, advance a single cumulative attained-service
counter) would also drop the per-job decrement loop in ``_advance``,
but ``fl(credit - V)`` rounds differently from the sequential
``fl(fl(r - p1) - p2)`` the previous kernel performed, which shifts
completion times by ULPs and breaks the byte-identity contract of
``tests/test_determinism.py`` — so the decrement loop stays, with the
exact same rounding sequence as before.
"""

from __future__ import annotations

from typing import Dict, Optional

from .core import Event, SimulationError, Simulator

__all__ = ["ProcessorSharingServer"]

#: Remaining work below this is considered complete (guards float drift).
_EPSILON = 1e-9


class _CompletionTimer:
    """Bare kernel timer for the next PS completion.

    Implements the kernel's bare-timer protocol (``callbacks = None`` +
    ``fire()``) so the dispatch loop calls it directly — no Event, no
    ``_Deferred`` wrapper, no closure cell per re-arm.  Superseded
    timers are discarded lazily via the generation check, exactly like
    the old closure-based timer.
    """

    __slots__ = ("server", "generation")

    #: Marks this entry as a bare timer for the dispatch loop.
    callbacks = None

    def __init__(self, server: "ProcessorSharingServer", generation: int):
        self.server = server
        self.generation = generation

    def fire(self) -> None:
        server = self.server
        if self.generation != server._generation:
            return  # State changed since scheduling; superseded.
        server._advance()
        server._reschedule()


class ProcessorSharingServer:
    """A multi-core processor-sharing server with variable speed."""

    # Slotted: _advance/_reschedule run on every job submit/completion
    # and are dominated by attribute traffic.
    __slots__ = (
        "sim",
        "cores",
        "name",
        "_speed",
        "_background",
        "_jobs",
        "_shortest_job",
        "_last_update",
        "_generation",
        "_busy_core_seconds",
        "_work_done",
        "jobs_completed",
        "jobs_submitted",
    )

    def __init__(
        self,
        sim: Simulator,
        cores: int = 1,
        speed: float = 1.0,
        name: str = "cpu",
    ):
        if cores < 1:
            raise SimulationError(f"cores must be >= 1, got {cores}")
        if speed < 0:
            raise SimulationError(f"speed must be >= 0, got {speed}")
        self.sim = sim
        self.cores = int(cores)
        self.name = name
        self._speed = float(speed)
        # Fluid background load (hybrid engine): a continuous number of
        # phantom PS jobs competing for the same cores.  0.0 keeps every
        # hot-path expression byte-identical to the pre-hybrid kernel.
        self._background = 0.0
        # Insertion-ordered job table: completion scans must visit jobs
        # in submission order (event succession order is observable).
        self._jobs: Dict[Event, float] = {}
        #: The job with the least remaining work, tracked incrementally
        #: (None = unknown, rescan lazily).  All jobs shrink by the same
        #: increment per advance, so the argmin is stable between
        #: submissions/completions/cancels.
        self._shortest_job: Optional[Event] = None
        self._last_update = sim.now
        self._generation = 0
        # Integrators (advance() brings these up to date).
        self._busy_core_seconds = 0.0
        self._work_done = 0.0
        self.jobs_completed = 0
        self.jobs_submitted = 0

    # -- public state ----------------------------------------------------

    @property
    def speed(self) -> float:
        """Current effective speed factor (1.0 = nominal)."""
        return self._speed

    @property
    def active_jobs(self) -> int:
        """Number of jobs currently in service."""
        return len(self._jobs)

    @property
    def background_load(self) -> float:
        """Fluid background jobs currently sharing the server (hybrid)."""
        return self._background

    @property
    def busy_core_seconds(self) -> float:
        """Accumulated busy core-seconds (stall time counts as busy)."""
        self._advance()
        return self._busy_core_seconds

    @property
    def work_done(self) -> float:
        """Accumulated nominal CPU-seconds of completed work."""
        self._advance()
        return self._work_done

    def utilization_between(self, busy_before: float, elapsed: float) -> float:
        """Utilization over an interval given a prior busy snapshot.

        ``busy_before`` is an earlier value of :attr:`busy_core_seconds`;
        ``elapsed`` the wall-clock (simulated) interval length.
        """
        if elapsed <= 0:
            return 0.0
        delta = self.busy_core_seconds - busy_before
        return min(1.0, delta / (elapsed * self.cores))

    # -- operations -------------------------------------------------------

    def execute(self, work: float) -> Event:
        """Submit ``work`` nominal CPU-seconds; event triggers when done."""
        if work < 0:
            raise SimulationError(f"work must be >= 0, got {work}")
        self.jobs_submitted += 1
        done = Event(self.sim)
        if work == 0:
            self.jobs_completed += 1
            done.succeed()
            return done
        self._advance()
        jobs = self._jobs
        work = float(work)
        jobs[done] = work
        # O(1) shortest-job maintenance: the advance above brought every
        # remaining-work value up to now, so a single comparison decides
        # whether the newcomer is the next to finish.  (Ties keep the
        # incumbent — only the min *value* is observable, and it's equal.)
        shortest = self._shortest_job
        if shortest is None or work < jobs[shortest]:
            self._shortest_job = done
        self._reschedule()
        return done

    def set_speed(self, speed: float) -> None:
        """Change the effective speed factor (e.g. under attack)."""
        if speed < 0:
            raise SimulationError(f"speed must be >= 0, got {speed}")
        self._advance()
        self._speed = float(speed)
        self._reschedule()

    def set_background_load(self, background: float) -> None:
        """Set the fluid background load (hybrid fluid/DES coupling).

        ``background`` is the mean number of bulk-population jobs the
        fluid engine says are runnable on this CPU right now.  They
        share the PS server exactly like discrete jobs: with ``n``
        discrete and ``b`` fluid jobs the per-job rate becomes
        ``speed * min(n + b, cores) / (n + b)``, and busy-time
        accounting charges ``min(n + b, cores)`` core-seconds per
        second, so guest utilization monitors see the bulk load too.
        Setting 0.0 restores the exact pre-hybrid arithmetic.
        """
        if background < 0:
            raise SimulationError(
                f"background must be >= 0, got {background}"
            )
        background = float(background)
        if background == self._background:
            return
        self._advance()
        self._background = background
        self._reschedule()

    def cancel(self, job: Event) -> None:
        """Abort an in-service job without triggering its event."""
        self._advance()
        if self._jobs.pop(job, None) is not None:
            if job is self._shortest_job:
                self._shortest_job = None  # rescan lazily in _reschedule
            self._reschedule()

    # -- internals --------------------------------------------------------

    def _per_job_rate(self, n: int) -> float:
        if n == 0:
            return 0.0
        load = n + self._background
        return self._speed * min(load, self.cores) / load

    def _advance(self) -> None:
        """Bring job progress and integrators up to ``sim.now``."""
        now = self.sim._now
        dt = now - self._last_update
        if dt <= 0:
            self._last_update = now
            return
        jobs = self._jobs
        n = len(jobs)
        if n:
            background = self._background
            if background == 0.0:
                active_cores = n if n < self.cores else self.cores
                # Stalled-but-runnable vCPUs look busy to guest monitors.
                self._busy_core_seconds += dt * active_cores
                progress = self._speed * active_cores / n * dt
            else:
                # Hybrid: fluid bulk jobs share the PS discipline.  The
                # zero-background branch above keeps the exact original
                # rounding sequence (byte-identity contract).
                load = n + background
                active_cores = load if load < self.cores else self.cores
                self._busy_core_seconds += dt * active_cores
                progress = self._speed * active_cores / load * dt
            if progress > 0:
                self._work_done += progress * n
                # Identical fl(r - progress) per job as the original
                # per-job loop; only the container iteration changed.
                for job, remaining in jobs.items():
                    jobs[job] = remaining - progress
        else:
            background = self._background
            if background > 0.0:
                # Bulk-only load still looks busy to guest monitors.
                active = background if background < self.cores else self.cores
                self._busy_core_seconds += dt * active
        self._last_update = now

    def _find_shortest(self) -> Optional[Event]:
        """O(n) argmin rescan (completion/cancel path only)."""
        jobs = self._jobs
        if not jobs:
            return None
        best_job = None
        best = None
        for job, remaining in jobs.items():
            if best is None or remaining < best:
                best, best_job = remaining, job
        return best_job

    def _reschedule(self) -> None:
        """Schedule the next completion after any state change.

        Superseded timers are discarded lazily: every re-arm bumps the
        generation, and a stale ``fire`` returns without touching the
        server, so the heap never needs an O(n) deletion.  The common
        submit path is O(1): the shortest job is tracked incrementally,
        so no ``min`` scan runs unless something actually completed (or
        the tracked job was cancelled).
        """
        self._generation += 1
        generation = self._generation
        jobs = self._jobs
        if not jobs:
            self._shortest_job = None
            return
        shortest_job = self._shortest_job
        if shortest_job is None:
            shortest_job = self._shortest_job = self._find_shortest()
        shortest = jobs[shortest_job]
        if shortest <= _EPSILON:
            finished = [
                job for job, remaining in jobs.items()
                if remaining <= _EPSILON
            ]
            for job in finished:
                del jobs[job]
                self.jobs_completed += 1
                job.succeed()
            if not jobs:
                self._shortest_job = None
                return
            shortest_job = self._shortest_job = self._find_shortest()
            shortest = jobs[shortest_job]
        n = len(jobs)
        cores = self.cores
        background = self._background
        if background == 0.0:
            rate = self._speed * (n if n < cores else cores) / n
        else:
            load = n + background
            rate = self._speed * (load if load < cores else cores) / load
        if rate <= 0:
            return  # Fully stalled: no completion until speed changes.
        delay = shortest / rate
        if delay < 0.0:
            delay = 0.0
        # Enqueue into the calendar wheel directly: same absolute time
        # and sequence-counter position as the old defer_in() path, so
        # dispatch order is byte-identical, minus two call frames and a
        # closure allocation per re-arm.
        sim = self.sim
        sim._push_timed(sim._now + delay, _CompletionTimer(self, generation))
