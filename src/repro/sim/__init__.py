"""Discrete-event simulation kernel (events, processes, resources).

This subpackage is the substrate everything else runs on.  It plays the
role that the physical testbed and the JMT simulator play in the paper.
"""

from .core import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    StopSimulation,
    Timeout,
)
from .hybrid import FluidEngine, FluidTier, FluidWindow, HybridConfig
from .psserver import ProcessorSharingServer
from .resources import CapacityError, Container, Request, Resource, Store
from .rng import RandomStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "CapacityError",
    "Container",
    "Event",
    "FluidEngine",
    "FluidTier",
    "FluidWindow",
    "HybridConfig",
    "Interrupt",
    "Process",
    "ProcessorSharingServer",
    "RandomStreams",
    "Request",
    "Resource",
    "SimulationError",
    "Simulator",
    "StopSimulation",
    "Store",
    "Timeout",
]
