"""Hybrid fluid/DES engine: mean-field bulk + sampled discrete users.

The pure-Python kernel simulates every user discretely, which caps the
population at a few tens of thousands before wall time explodes.  The
paper's closed-loop model (Eqs 2-10) and the validated MVA machinery
show that the *mean* queue dynamics are analytically tractable — only
the tail needs discrete events.  This module exploits that split:

* The **bulk** of the closed-loop population is advanced as continuous
  per-tier fluid state by :class:`FluidEngine` — a deterministic
  mean-field stepper (forward Euler on a fixed ``fluid_tick``, plus an
  exact re-step on every attack ON/OFF boundary) whose rate equations
  mirror the DES tier chain: closed-loop arrivals at rate
  ``x_think / Z``, bounded front-tier admission with TCP-RTO retry of
  the overflow, per-tier processor sharing at
  ``speed * min(load, cores)``, and synchronous-RPC thread pinning
  (a bulk request resident at MySQL still holds one Tomcat and one
  Apache thread, so upstream pools drain back-to-front exactly like
  the paper's Fig 9 cascade).
* A **sampled** sub-population of real users runs through the
  unmodified DES kernel and supplies the tail percentiles.  The fluid
  state feeds back into the discrete world as *background load*:
  :meth:`ProcessorSharingServer.set_background_load` (capacity share)
  and :meth:`Resource.set_background` (queue depth), so each sampled
  request experiences the same millibottleneck amplification as a full
  run.

The engine is RNG-free and touches no random stream; a hybrid run with
``sample_fraction=1.0`` has no bulk, never constructs the engine, and
is byte-identical to a plain full-DES run (asserted by the determinism
suite).

Layering: this module only knows :class:`Resource` and the PS-server
background hooks — the per-tier wiring (:class:`FluidTier`) is built by
the experiment runner from a :class:`~repro.cloud.platform.CloudDeployment`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Generator, List, Optional

from .core import Simulator, Timeout
from .psserver import ProcessorSharingServer
from .resources import Resource

__all__ = [
    "HybridConfig",
    "FluidTier",
    "FluidWindow",
    "FluidEngine",
    "fluid_tiers_for",
]


def fluid_tiers_for(
    tiers: List[Any], mean_demand: Callable[[str], float]
) -> List["FluidTier"]:
    """Build the per-tier fluid wiring for a chain of app tiers.

    ``tiers`` are :class:`~repro.ntier.tier.Tier`-shaped objects (the
    chain slice the engine's bulk flows through — the whole app in a
    single-host run, one shard's local slice in a datacenter run);
    ``mean_demand`` maps a tier name to the bulk's mean CPU demand
    there.  Shared by the experiment runner and the hybrid-bulk shard
    workers so both modes couple the bulk through identical wiring.
    """
    return [
        FluidTier(
            name=tier.name,
            cpu=tier.vm.cpu,
            pool=tier.pool,
            demand=mean_demand(tier.name),
            link_down=getattr(tier, "link_down", None),
            link_up=getattr(tier, "link_up", None),
        )
        for tier in tiers
    ]


@dataclass(frozen=True)
class HybridConfig:
    """Configuration of a hybrid fluid/DES run.

    ``sample_fraction`` of the population runs as real DES users; the
    rest becomes fluid.  ``fluid_tick`` is the Euler step (the stepper
    additionally syncs on every attack ON/OFF boundary, so burst edges
    are never smeared by the tick).  ``couple=False`` runs the sampled
    users against an idle deployment (useful for isolating the
    coupling's effect; also the documented byte-identity mode at
    ``sample_fraction=1.0``).  ``rto`` is the TCP retransmission
    timeout applied to bulk requests dropped at the front tier,
    matching the discrete clients' minimum RTO.
    """

    sample_fraction: float = 0.05
    fluid_tick: float = 0.02
    couple: bool = True
    rto: float = 1.0
    #: Cadence of ``fluid.window`` event-bus summaries (seconds).
    publish_window: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.sample_fraction <= 1.0:
            raise ValueError(
                f"sample_fraction must be in (0, 1], got {self.sample_fraction}"
            )
        if self.fluid_tick <= 0:
            raise ValueError(f"fluid_tick must be > 0, got {self.fluid_tick}")
        if self.rto <= 0:
            raise ValueError(f"rto must be > 0, got {self.rto}")
        if self.publish_window <= 0:
            raise ValueError(
                f"publish_window must be > 0, got {self.publish_window}"
            )

    def split(self, users: int) -> "PopulationSplit":
        """Partition ``users`` into sampled discrete + fluid bulk."""
        if users < 1:
            raise ValueError(f"users must be >= 1, got {users}")
        sampled = int(round(users * self.sample_fraction))
        sampled = max(1, min(users, sampled))
        return PopulationSplit(
            users=users,
            sampled=sampled,
            bulk=users - sampled,
            weight=users / sampled,
        )


@dataclass(frozen=True)
class PopulationSplit:
    """How a hybrid run partitions the closed-loop population."""

    users: int
    sampled: int
    bulk: int
    weight: float


@dataclass
class FluidTier:
    """Per-tier wiring handed to the fluid engine by the runner."""

    name: str
    cpu: ProcessorSharingServer
    pool: Resource
    #: Mean bulk CPU demand at this tier (seconds at nominal speed).
    demand: float
    #: Routed queue chains to/from the next tier down (``None`` when the
    #: scenario has no network model, or at the last tier).  When set,
    #: the engine folds their :meth:`~repro.net.queues.QueueChain.
    #: fluid_delay` into the per-request cycle time, so the bulk feels
    #: network microbursts through the same serialization horizons as
    #: the discrete requests.
    link_down: Any = None
    link_up: Any = None

    def network_delay(self) -> float:
        """Current fluid network time per request at this tier's hop."""
        delay = 0.0
        if self.link_down is not None:
            delay += self.link_down.fluid_delay()
        if self.link_up is not None:
            delay += self.link_up.fluid_delay()
        return delay

    @property
    def capacity(self) -> int:
        return self.pool.capacity

    @property
    def admission_capacity(self) -> Optional[int]:
        if self.pool.max_queue is None:
            return None
        return self.pool.capacity + self.pool.max_queue


@dataclass(frozen=True)
class FluidWindow:
    """One ``publish_window`` summary of the bulk population's state."""

    start: float
    end: float
    #: Time-averaged bulk occupancy per tier (holders + waiters).
    queues: Dict[str, float]
    #: Time-averaged bulk users in think state.
    thinking: float
    #: Time-averaged bulk mass waiting out a front-tier-drop RTO.
    retrying: float
    #: Bulk request completions per second over the window.
    throughput: float
    #: Bulk front-tier drops per second over the window.
    drop_rate: float

    def as_dict(self) -> Dict[str, Any]:
        return {
            "start": self.start,
            "end": self.end,
            "queues": dict(self.queues),
            "thinking": self.thinking,
            "retrying": self.retrying,
            "throughput": self.throughput,
            "drop_rate": self.drop_rate,
        }


class FluidEngine:
    """Mean-field stepper for the bulk population of a hybrid run.

    State variables (all continuous, conservation holds exactly):

    * ``x[i]`` — bulk requests whose *deepest* position is tier ``i``
      (holding or waiting for a tier-``i`` slot).  With synchronous
      RPC, a request at tier ``i`` also pins one thread in every tier
      above it, so tier ``i``'s total bulk occupancy is the nested sum
      ``sum(x[i:])``.
    * ``thinking`` — bulk users in their think period (drains at rate
      ``thinking / think_time``).
    * retry buckets — front-tier-dropped mass re-arriving one RTO
      later, like the discrete clients' TCP retransmission.

    Each sync step (fluid tick or attack boundary) advances the state
    with the *cached* CPU speeds over the elapsed interval, then
    refreshes the speed cache — so a burst edge mid-tick is handled
    exactly: the engine subscribes to every tier's memory subsystem and
    re-steps on the boundary before the new speed takes effect.
    """

    def __init__(
        self,
        sim: Simulator,
        tiers: List[FluidTier],
        bulk_users: int,
        think_time: float,
        config: HybridConfig,
        bus: Optional[Any] = None,
    ):
        if not tiers:
            raise ValueError("FluidEngine needs at least one tier")
        if bulk_users < 0:
            raise ValueError(f"bulk_users must be >= 0, got {bulk_users}")
        if think_time <= 0:
            raise ValueError(f"think_time must be > 0, got {think_time}")
        self.sim = sim
        self.tiers = list(tiers)
        self.bulk_users = int(bulk_users)
        self.think_time = float(think_time)
        self.config = config
        self.bus = bus
        n = len(self.tiers)
        # -- fluid state ---------------------------------------------------
        self.x: List[float] = [0.0] * n
        self.thinking: float = float(bulk_users)
        #: (due time, mass) buckets of dropped bulk awaiting their RTO.
        self._retry: Deque[List[float]] = deque()
        self._retry_mass = 0.0
        # -- integrators ---------------------------------------------------
        self.completed = 0.0
        self.dropped = 0.0
        self.peak_queues: Dict[str, float] = {t.name: 0.0 for t in self.tiers}
        # -- per-window accumulators (time-weighted) -----------------------
        self._win_start = sim.now
        self._win_area = [0.0] * n
        self._win_think_area = 0.0
        self._win_retry_area = 0.0
        self._win_completed0 = 0.0
        self._win_dropped0 = 0.0
        self.windows: List[FluidWindow] = []
        #: Extra consumers of finished windows (the monitor verb).
        self.on_window: List[Callable[[FluidWindow], None]] = []
        # -- stepper bookkeeping -------------------------------------------
        self._last = sim.now
        self._speeds = [t.cpu.speed for t in self.tiers]
        self._unsubscribe: List[Callable[[], None]] = []
        self._started = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Spawn the tick process (idempotent)."""
        if self._started:
            return
        self._started = True
        self._last = self.sim.now
        self._win_start = self.sim.now
        self._speeds = [t.cpu.speed for t in self.tiers]
        if self.config.couple:
            self._push_coupling()
        self.sim.process(self._run())

    def watch(self, memory: Any) -> None:
        """Re-step exactly on ``memory``'s contention ON/OFF boundaries.

        ``memory`` is a :class:`~repro.hardware.memory.MemorySubsystem`
        (duck-typed: anything with ``subscribe(fn)``).  Must be called
        *after* the deployment's VMs subscribed, so the engine sees the
        boundary after the CPU speeds were already updated — the step
        itself uses the speeds cached before the change.
        """
        memory.subscribe(self.sync)
        if hasattr(memory, "unsubscribe"):
            self._unsubscribe.append(
                lambda m=memory: m.unsubscribe(self.sync)
            )

    def detach(self) -> None:
        """Drop boundary subscriptions (the tick process keeps running)."""
        for unsubscribe in self._unsubscribe:
            unsubscribe()
        self._unsubscribe.clear()

    def _run(self) -> Generator:
        sim = self.sim
        tick = self.config.fluid_tick
        while True:
            yield Timeout(sim, tick)
            self.sync()

    # -- stepping ----------------------------------------------------------

    def sync(self) -> None:
        """Advance fluid state to ``sim.now`` and refresh couplings."""
        now = self.sim.now
        dt = now - self._last
        if dt > 0.0:
            self._step(dt, now)
            self._last = now
        tiers = self.tiers
        self._speeds = [t.cpu.speed for t in tiers]
        if self.config.couple:
            self._push_coupling()
        self._maybe_publish(now)

    def _step(self, dt: float, now: float) -> None:
        """One explicit-Euler step over ``dt`` with the cached speeds."""
        tiers = self.tiers
        n = len(tiers)
        x = self.x
        speeds = self._speeds

        # Window accumulators integrate the pre-step state.
        nested_total = 0.0
        for i in range(n - 1, -1, -1):
            nested_total += x[i]
            self._win_area[i] += nested_total * dt
        self._win_think_area += self.thinking * dt
        self._win_retry_area += self._retry_mass * dt

        # Retry buckets whose RTO expired re-arrive this step.
        rearriving = 0.0
        retry = self._retry
        while retry and retry[0][0] <= now:
            rearriving += retry.popleft()[1]
        self._retry_mass -= rearriving

        # Closed-loop departures from think state.
        departing = self.thinking / self.think_time * dt
        if departing > self.thinking:
            departing = self.thinking
        arriving = departing + rearriving

        # Bounded front-tier admission (bulk sees the sampled discrete
        # occupancy too, so both populations share one admission queue).
        front = tiers[0]
        adm_cap = front.admission_capacity
        if adm_cap is not None and arriving > 0.0:
            occupied = nested_total + front.pool.occupancy
            free = adm_cap - occupied
            if free < 0.0:
                free = 0.0
            admitted = arriving if arriving < free else free
            dropped = arriving - admitted
        else:
            admitted = arriving
            dropped = 0.0
        if dropped > 0.0:
            self.dropped += dropped
            self._retry_mass += dropped
            retry.append([now + self.config.rto, dropped])

        # Per-tier service outflow, computed from the pre-step state.
        # A bulk request resident at tier i holds a thread in every
        # tier above, so the threads available to tier i's own
        # residents are capacity minus the deeper bulk minus the
        # discrete holders; of those, min(runnable, cores) make CPU
        # progress, shared PS-style with the discrete jobs.
        out = [0.0] * n
        deeper = 0.0
        for i in range(n - 1, -1, -1):
            tier = tiers[i]
            xi = x[i]
            if xi > 0.0:
                slots = tier.capacity - deeper - tier.pool.in_use
                runnable = xi if xi < slots else slots
                if runnable > 0.0:
                    demand = tier.demand
                    if demand > 0.0:
                        load = runnable + tier.cpu.active_jobs
                        cores = tier.cpu.cores
                        share = 1.0 if load < cores else cores / load
                        net = tier.network_delay()
                        if net > 0.0:
                            # Routed hop: the per-request cycle time is
                            # CPU service plus the chain's current fluid
                            # serialization delay, so background fill
                            # (NIC attacks, microbursts) slows the bulk
                            # exactly like the discrete requests.
                            mu = runnable / (
                                demand / (speeds[i] * share) + net
                            )
                        else:
                            # Zero-network fast path: keep the original
                            # expression verbatim — same float rounding,
                            # byte-identical to pre-network hybrid runs.
                            mu = speeds[i] * share * runnable / demand
                        served = mu * dt
                    else:
                        served = xi  # Zero-demand tier: passes through.
                    out[i] = served if served < xi else xi
            deeper += xi

        # Apply flows: front admission -> chain -> back to think.
        inflow = admitted
        for i in range(n):
            xi = x[i] + inflow - out[i]
            x[i] = xi if xi > 0.0 else 0.0
            inflow = out[i]
        self.thinking += inflow - departing
        if self.thinking < 0.0:
            self.thinking = 0.0
        self.completed += inflow

        # Peak bulk occupancy per tier (nested).
        nested = 0.0
        peaks = self.peak_queues
        for i in range(n - 1, -1, -1):
            nested += x[i]
            name = tiers[i].name
            if nested > peaks[name]:
                peaks[name] = nested

    # -- coupling ----------------------------------------------------------

    def _push_coupling(self) -> None:
        """Feed the bulk state into the discrete tiers as background load.

        Pool background = nested bulk occupancy (holders + waiters);
        CPU background = the bulk jobs actually runnable on this tier's
        cores right now.
        """
        tiers = self.tiers
        x = self.x
        nested = 0.0
        for i in range(len(tiers) - 1, -1, -1):
            tier = tiers[i]
            xi = x[i]
            slots = tier.capacity - nested  # deeper bulk pins these
            nested += xi
            runnable = xi if xi < slots else slots
            if runnable < 0.0:
                runnable = 0.0
            tier.cpu.set_background_load(runnable)
            tier.pool.set_background(nested)

    def release_coupling(self) -> None:
        """Zero all background load (restores pre-hybrid behaviour)."""
        for tier in self.tiers:
            tier.cpu.set_background_load(0.0)
            tier.pool.set_background(0.0)

    # -- reporting ---------------------------------------------------------

    @property
    def in_system(self) -> float:
        """Bulk mass currently inside the tier chain."""
        return sum(self.x)

    def occupancy(self, index: int) -> float:
        """Nested bulk occupancy of tier ``index`` (holders + waiters)."""
        return sum(self.x[index:])

    def state(self) -> Dict[str, float]:
        """Instantaneous bulk occupancy per tier (plus think/retry)."""
        out = {
            tier.name: self.occupancy(i)
            for i, tier in enumerate(self.tiers)
        }
        out["thinking"] = self.thinking
        out["retrying"] = self._retry_mass
        return out

    def _maybe_publish(self, now: float) -> None:
        window = self.config.publish_window
        if now - self._win_start >= window:
            # Flush over the *actual* elapsed span (tick-quantized, so
            # roughly one publish_window) — the accumulators integrate
            # exactly [win_start, now] since every flush happens on a
            # sync, right after _step covered the interval.
            end = now
            span = end - self._win_start
            queues = {
                tier.name: self._win_area[i] / span
                for i, tier in enumerate(self.tiers)
            }
            fluid_window = FluidWindow(
                start=self._win_start,
                end=end,
                queues=queues,
                thinking=self._win_think_area / span,
                retrying=self._win_retry_area / span,
                throughput=(self.completed - self._win_completed0) / span,
                drop_rate=(self.dropped - self._win_dropped0) / span,
            )
            self.windows.append(fluid_window)
            if self.bus is not None:
                self.bus.publish("fluid.window", fluid_window)
            for consumer in self.on_window:
                consumer(fluid_window)
            self._win_start = end
            self._win_area = [0.0] * len(self.tiers)
            self._win_think_area = 0.0
            self._win_retry_area = 0.0
            self._win_completed0 = self.completed
            self._win_dropped0 = self.dropped
