"""MemCA vs external DoS baselines: the paper's positioning, measured.

Four campaigns against identical deployments: quiet, volumetric flood,
pulsating HTTP bursts (the cited tail attacks), and MemCA.  Asserts
the two-axis outcome: only MemCA is simultaneously damaging (legit
p95 > 1 s) and stealthy (no auto-scaling, no traffic anomaly, no LLC
signature).
"""

from conftest import run_once

from repro.experiments import run_baseline_comparison


def bench_baseline_positioning(benchmark, report, sweep_executor):
    result = run_once(
        benchmark,
        lambda: run_baseline_comparison(executor=sweep_executor),
    )
    report("baselines", result.render())
    quiet = result.row("none")
    flood = result.row("flood")
    pulsating = result.row("pulsating")
    memca = result.row("memca")

    # Quiet system: healthy and unalarmed.
    assert not quiet.damaging and quiet.stealthy

    # Flooding: devastating but loud on both the utilization and
    # traffic axes.
    assert flood.damaging
    assert flood.autoscaling_triggered
    assert flood.rate_anomaly_detected

    # Pulsating bursts: damage without sustained saturation (bypasses
    # auto-scaling) but the bursts are visible in the request stream.
    assert pulsating.damaging
    assert not pulsating.autoscaling_triggered
    assert pulsating.rate_anomaly_detected

    # MemCA: the only campaign that is damaging AND fully stealthy.
    assert memca.damaging and memca.stealthy
    winners = [r.campaign for r in result.rows
               if r.damaging and r.stealthy]
    assert winners == ["memca"]
