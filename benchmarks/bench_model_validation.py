"""Section IV-B: closed-form model (Eqs. 2-10) vs. DES measurements.

Sweeps burst parameterizations and compares measured fill-up, build-up,
damage period, and millibottleneck length against both the paper's
equations and the flow-conservation variant.
"""

from conftest import run_once

from repro.experiments import run_validation


def bench_model_validation(benchmark, report):
    result = run_once(benchmark, run_validation)
    report("model_validation", result.render())
    # The DES matches the conservation-based model closely.
    assert result.conservative_within(tolerance=0.5)
    for row in result.rows:
        measured = row.measured
        assert measured.bursts_observed >= 20
        # Bottleneck fill time: both model variants agree with the DES.
        assert measured.fill_time_back is not None
        predicted = row.conservative.fill_up[-1]
        assert abs(measured.fill_time_back - predicted) < max(
            0.01, 0.6 * predicted
        )
        # The paper's Eqs. 5-6 never predict slower fill than observed
        # (they sum per-tier arrival streams).
        assert row.paper.build_up <= row.conservative.build_up
        # Millibottleneck stays sub-second: the stealth envelope.
        assert measured.millibottleneck is not None
        assert measured.millibottleneck < 1.0
