"""Threat-model precondition: co-residency campaigns (§II-B).

The paper cites placement attacks with 0.6-0.89 success and dollars of
cost; this bench runs launch-probe-release campaigns against simulated
zones and checks the same ballpark: high success within a 60-VM budget
on moderate zones, costs in single-digit dollars, and harder/slower
campaigns on larger zones.
"""

from conftest import run_once

from repro.experiments import run_placement_study


def bench_placement_campaigns(benchmark, report, sweep_executor):
    study = run_once(
        benchmark,
        lambda: run_placement_study(
            zone_sizes=(10, 20, 40),
            strategies=("random",),
            trials=5,
            executor=sweep_executor,
        ),
    )
    report("placement", study.render())
    small = study.row(10, "random")
    mid = study.row(20, "random")
    large = study.row(40, "random")
    # High success within budget on moderate zones (paper: 0.6-0.89).
    assert small.success_rate >= 0.6
    assert mid.success_rate >= 0.6
    # Bigger zones cost more launches on average.
    assert large.mean_vms > small.mean_vms
    # Cost stays in the cited dollars range.
    for row in (small, mid, large):
        assert row.mean_cost_usd < 5.30
