"""Fig 3: per-VM memory bandwidth under the two memory attacks.

Regenerates the bandwidth-degradation curves for same-package and
random-package placements, checking the three Section III findings.
"""

from conftest import run_once

from repro.experiments import run_fig3
from repro.experiments.fig3 import run_fig3_hypervisors
from repro.hardware import EC2_E5_2680


def bench_fig3_bandwidth_degradation(benchmark, report, sweep_executor):
    result = run_once(
        benchmark, lambda: run_fig3(executor=sweep_executor)
    )
    report("fig3", result.render())
    assert result.finding1_single_attacker_insufficient()
    assert result.finding2_decreases_with_vms("same-package")
    assert result.finding2_decreases_with_vms("random-package")
    assert result.finding3_lock_beats_saturation()
    # Random package halves the damage (two buses instead of one).
    for attack in ("none", "saturate", "lock"):
        assert result.bandwidth("random-package", attack, 4) > (
            result.bandwidth("same-package", attack, 4)
        )


def bench_fig3_on_ec2_host(benchmark, report, sweep_executor):
    """Same profiling on the EC2 host spec."""
    result = run_once(
        benchmark,
        lambda: run_fig3(spec=EC2_E5_2680, executor=sweep_executor),
    )
    report("fig3_ec2", result.render())
    assert result.finding3_lock_beats_saturation()


def bench_fig3_across_hypervisors(benchmark, report, sweep_executor):
    """Section III cross-platform check: KVM/Xen/VMware/Hyper-V agree."""
    results = run_once(
        benchmark, lambda: run_fig3_hypervisors(executor=sweep_executor)
    )
    text = "\n\n".join(
        f"--- {name} ---\n{result.render()}"
        for name, result in results.items()
    )
    report("fig3_hypervisors", text)
    for name, result in results.items():
        assert result.finding1_single_attacker_insufficient(), name
        assert result.finding2_decreases_with_vms("same-package"), name
        assert result.finding3_lock_beats_saturation(), name
