"""Fig 9: the 8-second fine-grained damage snapshot.

Regenerates the four aligned panels: attack bursts, transient MySQL CPU
saturation, cross-tier queue propagation, and client response times.
"""

from dataclasses import replace

from conftest import run_once

from repro.experiments import PRIVATE_CLOUD, run_fig9


def bench_fig9_damage_snapshot(benchmark, report, sweep_executor):
    scenario = replace(PRIVATE_CLOUD, duration=40.0)
    result = run_once(
        benchmark,
        lambda: run_fig9(
            scenario, window_start=16.0, executor=sweep_executor
        ),
    )
    report("fig9", result.render())
    # (a) bursts every ~2 s for ~500 ms each.
    assert 3 <= len(result.bursts) <= 6
    for burst in result.bursts:
        assert burst.length <= 0.6
    # (b) transient CPU saturations, one per burst (within slack).
    assert result.transient_saturations() >= 3
    # (c) queue propagation beyond MySQL into upstream tiers.
    assert result.queues_propagate()
    # (d) clients perceive > 1 s response times in the window.
    assert result.client_peak() > 1.0
    # The Fig 9 claim, asserted programmatically (not eyeballed):
    # every >1 s request overlaps an attack burst or millibottleneck
    # episode.  Regeneration fails if attribution coverage < 100%.
    attribution = result.summary.attribution
    assert attribution is not None and attribution.slow_requests > 0
    assert attribution.coverage == 1.0, (
        f"only {attribution.attributed}/{attribution.slow_requests} "
        "slow requests attributed to a burst/episode"
    )
