"""Section V-A with MemCA-BE: the feedback-controlled campaign.

Starts from a deliberately weak parameterization and verifies the
Kalman-filtered commander escalates (intensity, then burst length, then
interval) until the 95th-percentile damage goal is reached — with no
victim-side knowledge.
"""

from conftest import run_once

from repro.experiments import run_controller


def bench_controller_convergence(benchmark, report):
    result = run_once(benchmark, run_controller)
    report("controller", result.render())
    assert result.converged, "commander never reached the damage goal"
    assert result.epochs_to_goal is not None
    # The ladder was actually climbed: intensity first.
    actions = " ".join(e.action for e in result.history)
    assert "escalate(intensity" in actions
    assert "escalate(length" in actions or "escalate(interval" in actions
    # Final effect meets the paper's damage bar.
    assert result.effect.percentiles[95] > 1.0
    # FE-side stealth estimate stays sub-second.
    assert result.effect.mean_burst_length < 1.0
