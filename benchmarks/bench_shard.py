"""Sharded-kernel benchmark: determinism gate + parallel speedup.

Two questions about ``repro.sim.sharded`` + ``run_datacenter``, each
with a ``--check`` gate:

* **identity** — a sharded run (one worker process per simulated host,
  conservative safe-window exchange) must be *byte-identical* to the
  single-process reference: same post-warmup request CSV, the exact
  same total dispatched-event count, and an identical merged latency
  sketch.  This gate is unconditional — it holds on any box, at any
  core count, and is the property DESIGN.md §12 proves.
* **speedup** — with one core per worker the sharded run must beat the
  single-process wall clock by the floor factor (2x on the 4-host
  scenario; the 2-host quick scenario gets a weak sanity floor — its
  ~2 ms safe window makes it an exchange-overhead stress, not a
  speedup showcase).  The floor is only *gated* when the machine has
  at least as many cores as workers; otherwise the measured ratio and
  the core count are recorded in the JSON and the gate is skipped —
  byte identity, not wall clock, is the portable contract.

Usage::

    PYTHONPATH=src python benchmarks/bench_shard.py            # full run
    PYTHONPATH=src python benchmarks/bench_shard.py --check    # full gate
    PYTHONPATH=src python benchmarks/bench_shard.py --quick --check  # CI

Results land in ``benchmarks/results/BENCH_shard.json`` (or
``BENCH_shard_quick.json`` with ``--quick``).
"""

from __future__ import annotations

import argparse
import csv
import io
import json
import os
import platform
import sys
import time

RESULTS_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "results"
)

#: Wall-clock floors, gated only when ``os.cpu_count() >= shards``.
#: Full mode is the ISSUE's acceptance bar: >= 2x on dc-4host with 4
#: workers.  Quick mode only proves the machinery isn't pathological —
#: dc-2host finishes single-process in well under a second, so worker
#: spawn + ~3k window exchanges dominate any 2-way parallelism; the
#: floor is a 5x-slowdown tripwire, not a speedup claim.
SPEEDUP_FLOOR = {"full": 2.0, "quick": 0.2}

SCENARIOS = {"full": "dc-4host", "quick": "dc-2host"}


def _requests_csv(run) -> str:
    """The run's post-warmup request table as canonical CSV text.

    Same row encoding as the committed determinism goldens
    (``tests/_golden.requests_csv_text``), so "the CSVs match" here
    means exactly what ``tests/test_determinism.py`` pins.
    """
    from repro.analysis.export import requests_to_rows

    rows = requests_to_rows(
        run.client_requests(), tiers=("apache", "tomcat", "mysql")
    )
    fields = list(rows[0].keys()) if rows else ["rid"]
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=fields, lineterminator="\n")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buf.getvalue()


def _sketch_state(run) -> dict:
    sketch = run.latency
    return {
        "count": sketch.count,
        "total": sketch.total,
        "zero_count": sketch.zero_count,
        "buckets": dict(sketch.buckets),
    }


def _measure(scenario, shards: int) -> tuple:
    from repro.experiments.datacenter import run_datacenter

    t0 = time.perf_counter()
    run = run_datacenter(scenario, shards=shards)
    wall = time.perf_counter() - t0
    return run, wall


def bench_shard(quick: bool) -> dict:
    from repro.experiments.datacenter import DATACENTERS

    name = SCENARIOS["quick" if quick else "full"]
    scenario = DATACENTERS[name]
    shards = len(scenario.shards)

    single, single_wall = _measure(scenario, 1)
    sharded, sharded_wall = _measure(scenario, shards)

    single_csv = _requests_csv(single)
    sharded_csv = _requests_csv(sharded)
    report = {
        "scenario": name,
        "users": scenario.base.users,
        "sim_seconds": scenario.base.duration,
        "shards": shards,
        "window_seconds": scenario.window,
        "windows": max(r.windows for r in sharded.shard_results),
        "cross_shard_messages": sum(
            r.sent for r in sharded.shard_results
        ),
        "single_process": {
            "wall_seconds": single_wall,
            "events": single.event_count,
            "completed": len(single.completed),
            "failed": len(single.failed),
        },
        "sharded": {
            "wall_seconds": sharded_wall,
            "events": sharded.event_count,
            "completed": len(sharded.completed),
            "failed": len(sharded.failed),
            "per_shard": [
                {
                    "host": r.host,
                    "tiers": list(r.tiers),
                    "events": r.events,
                    "sent": r.sent,
                    "received": r.received,
                }
                for r in sharded.shard_results
            ],
        },
        "identity": {
            "requests_csv": sharded_csv == single_csv,
            "request_rows": single_csv.count("\n") - 1,
            "event_count": sharded.event_count == single.event_count,
            "latency_sketch": (
                _sketch_state(sharded) == _sketch_state(single)
            ),
        },
        "speedup": single_wall / sharded_wall,
    }
    return report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: dc-2host (2 workers) instead of dc-4host (4)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit nonzero unless the sharded run is byte-identical to "
             "the single-process reference, and (when the box has "
             "enough cores) beats it by the speedup floor",
    )
    parser.add_argument("--out", default=None, help="output JSON path")
    args = parser.parse_args()

    cpu_count = os.cpu_count() or 1
    report = {
        "kind": "sharded-kernel-benchmark",
        "quick": args.quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": cpu_count,
    }
    result = bench_shard(args.quick)
    report.update(result)

    print(
        f"{result['scenario']}: {result['users']:,} users x "
        f"{result['sim_seconds']:g}s over {result['shards']} hosts, "
        f"window {result['window_seconds'] * 1e3:.2f}ms "
        f"({result['windows']} windows, "
        f"{result['cross_shard_messages']} cross-shard messages)"
    )
    print(
        f"  single-process {result['single_process']['wall_seconds']:.2f}s"
        f"  sharded {result['sharded']['wall_seconds']:.2f}s"
        f"  -> {result['speedup']:.2f}x on {cpu_count} core(s)"
    )
    identity = result["identity"]
    print(
        f"  identity: csv={identity['requests_csv']} "
        f"({identity['request_rows']} rows) "
        f"events={identity['event_count']} "
        f"({result['sharded']['events']:,}) "
        f"sketch={identity['latency_sketch']}"
    )

    out = args.out or os.path.join(
        RESULTS_DIR,
        "BENCH_shard_quick.json" if args.quick else "BENCH_shard.json",
    )
    out_dir = os.path.dirname(out)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out}")

    if args.check:
        failed = False

        def gate(ok: bool, ok_msg: str, fail_msg: str) -> None:
            nonlocal failed
            if ok:
                print(f"OK: {ok_msg}")
            else:
                print(f"FAIL: {fail_msg}", file=sys.stderr)
                failed = True

        gate(
            identity["requests_csv"],
            "sharded request CSV byte-identical to single-process",
            "sharded request CSV differs from single-process reference",
        )
        gate(
            identity["event_count"],
            f"event counts match exactly "
            f"({result['sharded']['events']:,})",
            f"event counts differ: sharded "
            f"{result['sharded']['events']:,} vs single "
            f"{result['single_process']['events']:,}",
        )
        gate(
            identity["latency_sketch"],
            "merged latency sketches identical",
            "merged latency sketches differ",
        )
        gate(
            result["identity"]["request_rows"] > 0,
            f"{identity['request_rows']} post-warmup requests compared",
            "no post-warmup requests: the identity gate compared "
            "nothing",
        )
        floor = SPEEDUP_FLOOR["quick" if args.quick else "full"]
        if cpu_count >= result["shards"]:
            gate(
                result["speedup"] >= floor,
                f"speedup {result['speedup']:.2f}x >= {floor:g}x "
                f"({result['shards']} workers on {cpu_count} cores)",
                f"speedup {result['speedup']:.2f}x < {floor:g}x "
                f"({result['shards']} workers on {cpu_count} cores)",
            )
        else:
            print(
                f"SKIP: speedup floor ({floor:g}x) not gated — "
                f"{cpu_count} core(s) < {result['shards']} workers; "
                f"measured {result['speedup']:.2f}x"
            )
        if failed:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
