"""Sharded-kernel benchmark: determinism gate + exchange overhead.

Three questions about ``repro.sim.sharded`` + ``run_datacenter``, each
with a ``--check`` gate:

* **identity** — a sharded run (worker processes synchronized by the
  safe-window exchange) must be *byte-identical* to the
  single-process reference in every transport mode: same post-warmup
  request CSV, the exact same total dispatched-event count, and an
  identical merged latency sketch.  This gate is unconditional — it
  holds on any box, at any core count, and is the property DESIGN.md
  §12 proves.
* **sync overhead** — the adaptive safe-window protocol + packed
  frame transport must cut per-window synchronization work by at
  least ``SYNC_REDUCTION_FLOOR`` versus the legacy fixed-window
  pickle wire.  The unit is deterministic and core-count-independent:
  the legacy wire pays one general pickle per cross-shard *message*
  plus one send per *frame* (``units = messages + frames``); the
  packed wire pays one struct-packed buffer per frame and nothing
  per message (``units = frames``), and adaptive widening/skip makes
  the frames themselves sparser.  Both runs cover the same simulated
  duration, so the unit ratio *is* the per-window overhead ratio.
  Gated in full mode when both modes run (``--mode both``, the
  default); in quick mode the ratio is recorded but not gated —
  dc-2host's only cross-host link sits at the base lookahead, so
  adaptive widening has nothing to cut there.
* **speedup** — with one core per worker the sharded run must beat
  the single-process wall clock by the floor factor.  Wall clock is
  the one machine-dependent gate: it is only enforced when the box
  has at least as many cores as workers; otherwise the measured
  ratio is recorded and an explicit ``wall-clock gate skipped
  (cores < shards)`` line is printed — byte identity and the sync
  unit count, not wall clock, are the portable contracts.

Full mode additionally runs the **dc-8host hybrid leg**: every shard
worker carries a per-host million-user fluid bulk (8M users total),
gated byte-identical to its own single-process reference with the
wall time recorded.

Usage::

    PYTHONPATH=src python benchmarks/bench_shard.py            # full run
    PYTHONPATH=src python benchmarks/bench_shard.py --check    # full gate
    PYTHONPATH=src python benchmarks/bench_shard.py --quick --check  # CI
    PYTHONPATH=src python benchmarks/bench_shard.py --quick --check \
        --mode fixed                                    # legacy wire only

Results land in ``benchmarks/results/BENCH_shard.json`` (or
``BENCH_shard_quick.json`` with ``--quick``).
"""

from __future__ import annotations

import argparse
import csv
import io
import json
import os
import platform
import sys
import time

RESULTS_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "results"
)

#: Wall-clock floors, gated only when ``os.cpu_count() >= shards``.
#: Full mode is the ISSUE's acceptance bar: >= 2x on dc-4host with 4
#: workers.  Quick mode only proves the machinery isn't pathological —
#: dc-2host finishes single-process in well under a second, so worker
#: spawn + thousands of window exchanges dominate any 2-way
#: parallelism; the floor is a 5x-slowdown tripwire, not a speedup
#: claim.
SPEEDUP_FLOOR = {"full": 2.0, "quick": 0.2}

#: Minimum reduction in sync units per window, adaptive+packed versus
#: fixed+pickle, gated whenever both modes run.
SYNC_REDUCTION_FLOOR = 5.0

SCENARIOS = {"full": "dc-4host", "quick": "dc-2host"}

#: Transport-mode name -> run_datacenter kwargs.  "fixed" is the
#: legacy lock-step pickle wire; "adaptive" is the per-link
#: safe-window protocol on struct-packed frames (the default mode of
#: ``run_datacenter``).
MODES = {
    "fixed": {"adaptive": False, "packed": False},
    "adaptive": {"adaptive": True, "packed": True},
}


def _requests_csv(run) -> str:
    """The run's post-warmup request table as canonical CSV text.

    Same row encoding as the committed determinism goldens
    (``tests/_golden.requests_csv_text``), so "the CSVs match" here
    means exactly what ``tests/test_determinism.py`` pins.
    """
    from repro.analysis.export import requests_to_rows

    rows = requests_to_rows(
        run.client_requests(), tiers=("apache", "tomcat", "mysql")
    )
    fields = list(rows[0].keys()) if rows else ["rid"]
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=fields, lineterminator="\n")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buf.getvalue()


def _sketch_state(run) -> dict:
    sketch = run.latency
    return {
        "count": sketch.count,
        "total": sketch.total,
        "zero_count": sketch.zero_count,
        "buckets": dict(sketch.buckets),
    }


def _measure(scenario, shards: int, **kwargs) -> tuple:
    from repro.experiments.datacenter import run_datacenter

    t0 = time.perf_counter()
    run = run_datacenter(scenario, shards=shards, **kwargs)
    wall = time.perf_counter() - t0
    return run, wall


def _sync_units(run, mode: str) -> int:
    """Core-count-independent synchronization work of a sharded run.

    Legacy pickle wire: every cross-shard message is pickled through
    the general object machinery and every frame is one send.  Packed
    wire: one struct-packed buffer per frame, per-message cost is a
    fixed-format pack (counted as zero units — it is bounded by the
    memcpy the pickle wire *also* pays).
    """
    messages = sum(r.sent for r in run.shard_results)
    frames = run.frames_exchanged
    return messages + frames if MODES[mode]["packed"] is False else frames


def _mode_record(run, wall: float, mode: str, reference) -> dict:
    single, single_csv = reference
    return {
        "wall_seconds": wall,
        "events": run.event_count,
        "completed": len(run.completed),
        "failed": len(run.failed),
        "rounds": run.rounds,
        "cross_shard_messages": sum(r.sent for r in run.shard_results),
        "frames": run.frames_exchanged,
        "wire_bytes": run.wire_bytes,
        "sync_units": _sync_units(run, mode),
        "identity": {
            "requests_csv": _requests_csv(run) == single_csv,
            "event_count": run.event_count == single.event_count,
            "latency_sketch": (
                _sketch_state(run) == _sketch_state(single)
            ),
        },
        "per_shard": [
            {
                "host": r.host,
                "tiers": list(r.tiers),
                "events": r.events,
                "sent": r.sent,
                "received": r.received,
                "frames": r.frames,
            }
            for r in run.shard_results
        ],
    }


def bench_shard(quick: bool, modes) -> dict:
    from repro.experiments.datacenter import DATACENTERS

    name = SCENARIOS["quick" if quick else "full"]
    scenario = DATACENTERS[name]
    shards = len(scenario.shards)

    single, single_wall = _measure(scenario, 1)
    single_csv = _requests_csv(single)
    reference = (single, single_csv)

    report = {
        "scenario": name,
        "users": scenario.base.users,
        "sim_seconds": scenario.base.duration,
        "shards": shards,
        "window_seconds": scenario.window,
        "request_rows": single_csv.count("\n") - 1,
        "single_process": {
            "wall_seconds": single_wall,
            "events": single.event_count,
            "completed": len(single.completed),
            "failed": len(single.failed),
        },
        "modes": {},
    }
    for mode in modes:
        run, wall = _measure(scenario, shards, **MODES[mode])
        report["modes"][mode] = _mode_record(run, wall, mode, reference)

    if "fixed" in report["modes"] and "adaptive" in report["modes"]:
        fixed_units = report["modes"]["fixed"]["sync_units"]
        adaptive_units = report["modes"]["adaptive"]["sync_units"]
        report["sync_unit_reduction"] = (
            fixed_units / adaptive_units if adaptive_units else float("inf")
        )
    return report


def bench_hybrid(modes) -> dict:
    """The dc-8host hybrid leg: 1M fluid users per host, 8 hosts."""
    from repro.experiments.datacenter import DATACENTERS

    scenario = DATACENTERS["dc-8host"]
    shards = len(scenario.shards)
    single, single_wall = _measure(scenario, 1)
    single_csv = _requests_csv(single)
    mode = "adaptive" if "adaptive" in modes else "fixed"
    run, wall = _measure(scenario, shards, **MODES[mode])
    fluid = run.fluid_totals
    return {
        "scenario": "dc-8host",
        "users": scenario.base.users,
        "bulk_users_per_host": scenario.bulk.users_per_host,
        "bulk_users_total": fluid["bulk_users"] if fluid else 0.0,
        "sim_seconds": scenario.base.duration,
        "shards": shards,
        "mode": mode,
        "single_wall_seconds": single_wall,
        "sharded_wall_seconds": wall,
        "fluid_completed": fluid["completed"] if fluid else 0.0,
        "fluid_dropped": fluid["dropped"] if fluid else 0.0,
        "identity": {
            "requests_csv": _requests_csv(run) == single_csv,
            "event_count": run.event_count == single.event_count,
            "latency_sketch": (
                _sketch_state(run) == _sketch_state(single)
            ),
        },
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: dc-2host (2 workers) instead of dc-4host (4), "
             "and no dc-8host hybrid leg",
    )
    parser.add_argument(
        "--mode", choices=("both", "adaptive", "fixed"), default="both",
        help="which sharded transport mode(s) to run; the sync-overhead "
             "reduction gate needs 'both' (default)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit nonzero unless every sharded run is byte-identical "
             "to the single-process reference, the adaptive wire cuts "
             "sync units by the floor (when both modes run), and (when "
             "the box has enough cores) the wall-clock floor holds",
    )
    parser.add_argument("--out", default=None, help="output JSON path")
    args = parser.parse_args()

    modes = ("adaptive", "fixed") if args.mode == "both" else (args.mode,)
    cpu_count = os.cpu_count() or 1
    report = {
        "kind": "sharded-kernel-benchmark",
        "quick": args.quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": cpu_count,
    }
    result = bench_shard(args.quick, modes)
    report.update(result)

    print(
        f"{result['scenario']}: {result['users']:,} users x "
        f"{result['sim_seconds']:g}s over {result['shards']} hosts, "
        f"window {result['window_seconds'] * 1e3:.2f}ms, "
        f"single-process {result['single_process']['wall_seconds']:.2f}s"
    )
    for mode in modes:
        rec = result["modes"][mode]
        identity = rec["identity"]
        print(
            f"  {mode:>8}: {rec['wall_seconds']:.2f}s, "
            f"{rec['rounds']} rounds, {rec['frames']} frames, "
            f"{rec['cross_shard_messages']} messages, "
            f"{rec['sync_units']} sync units"
        )
        print(
            f"  {'':>8}  identity: csv={identity['requests_csv']} "
            f"({result['request_rows']} rows) "
            f"events={identity['event_count']} ({rec['events']:,}) "
            f"sketch={identity['latency_sketch']}"
        )
    if "sync_unit_reduction" in result:
        print(
            f"  sync-unit reduction (fixed/adaptive): "
            f"{result['sync_unit_reduction']:.1f}x"
        )

    hybrid = None
    if not args.quick:
        hybrid = bench_hybrid(modes)
        report["hybrid"] = hybrid
        print(
            f"{hybrid['scenario']} hybrid leg: "
            f"{hybrid['bulk_users_total']:,.0f} fluid users "
            f"({hybrid['bulk_users_per_host']:,} per host) + "
            f"{hybrid['users']:,} discrete, "
            f"single {hybrid['single_wall_seconds']:.2f}s, "
            f"{hybrid['shards']} shards {hybrid['sharded_wall_seconds']:.2f}s "
            f"({hybrid['mode']})"
        )
        print(
            f"  fluid: {hybrid['fluid_completed']:.0f} completed, "
            f"{hybrid['fluid_dropped']:.0f} dropped; identity: "
            f"csv={hybrid['identity']['requests_csv']} "
            f"events={hybrid['identity']['event_count']} "
            f"sketch={hybrid['identity']['latency_sketch']}"
        )

    out = args.out or os.path.join(
        RESULTS_DIR,
        "BENCH_shard_quick.json" if args.quick else "BENCH_shard.json",
    )
    out_dir = os.path.dirname(out)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out}")

    if args.check:
        failed = False

        def gate(ok: bool, ok_msg: str, fail_msg: str) -> None:
            nonlocal failed
            if ok:
                print(f"OK: {ok_msg}")
            else:
                print(f"FAIL: {fail_msg}", file=sys.stderr)
                failed = True

        gate(
            result["request_rows"] > 0,
            f"{result['request_rows']} post-warmup requests compared",
            "no post-warmup requests: the identity gates compared "
            "nothing",
        )
        legs = [(mode, result["modes"][mode]["identity"]) for mode in modes]
        if hybrid is not None:
            legs.append(("dc-8host hybrid", hybrid["identity"]))
        for leg, identity in legs:
            for check, ok in identity.items():
                gate(
                    ok,
                    f"[{leg}] {check} identical to single-process",
                    f"[{leg}] {check} differs from single-process "
                    f"reference",
                )
        if "sync_unit_reduction" in result:
            reduction = result["sync_unit_reduction"]
            if args.quick:
                # dc-2host's only cross-host link sits at the base
                # lookahead, so adaptive widening has nothing to cut;
                # the reduction floor is a dc-4host (full) property.
                print(
                    f"SKIP: sync-reduction floor "
                    f"({SYNC_REDUCTION_FLOOR:g}x) not gated in quick "
                    f"mode; measured {reduction:.1f}x"
                )
            else:
                gate(
                    reduction >= SYNC_REDUCTION_FLOOR,
                    f"sync units per window cut {reduction:.1f}x >= "
                    f"{SYNC_REDUCTION_FLOOR:g}x (adaptive+packed vs "
                    f"fixed+pickle)",
                    f"sync units per window cut only {reduction:.1f}x < "
                    f"{SYNC_REDUCTION_FLOOR:g}x",
                )
        floor = SPEEDUP_FLOOR["quick" if args.quick else "full"]
        for mode in modes:
            rec = result["modes"][mode]
            speedup = (
                result["single_process"]["wall_seconds"]
                / rec["wall_seconds"]
            )
            rec["speedup"] = speedup
            if cpu_count >= result["shards"]:
                gate(
                    speedup >= floor,
                    f"[{mode}] speedup {speedup:.2f}x >= {floor:g}x "
                    f"({result['shards']} workers on {cpu_count} cores)",
                    f"[{mode}] speedup {speedup:.2f}x < {floor:g}x "
                    f"({result['shards']} workers on {cpu_count} cores)",
                )
            else:
                print(
                    f"SKIP: wall-clock gate skipped (cores < shards) — "
                    f"{cpu_count} core(s) < {result['shards']} workers; "
                    f"floor {floor:g}x, measured {speedup:.2f}x "
                    f"({mode})"
                )
        # Re-write the JSON so the speedup fields land in it too.
        with open(out, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        if failed:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
