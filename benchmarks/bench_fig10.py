"""Fig 10: stealthiness under cloud elasticity (CloudWatch sampling).

Regenerates the three granularity views of the attacked MySQL CPU and
verifies the auto-scaling threshold is never crossed at CloudWatch
granularity while 50 ms monitoring plainly shows saturations.
"""

from conftest import run_once

from repro.experiments import run_fig10


def bench_fig10_autoscaling_bypass(benchmark, report, sweep_executor):
    result = run_once(
        benchmark, lambda: run_fig10(executor=sweep_executor)
    )
    report("fig10", result.render())
    assert result.bypassed_autoscaling
    views = result.views
    # 1-minute view: flat and moderate — nothing above the trigger.
    assert views["cloudwatch_1min"].max() < result.policy.threshold
    # 50 ms view: transient saturations are plainly visible.
    assert views["ultrafine_50ms"].max() >= 0.99
    # The finer you sample, the more saturation you see.
    assert (
        views["ultrafine_50ms"].fraction_above(0.95)
        > views["fine_1s"].fraction_above(0.95)
        >= views["cloudwatch_1min"].fraction_above(0.95)
    )
