"""Network queue-chain benchmark: neutrality and tail amplification.

Two questions about ``repro.net``, each with a ``--check`` gate:

* **neutrality** — does ``network=None`` (the default on every
  pre-existing scenario) still execute *exactly* the event schedule it
  did before the network subsystem landed?  The gate compares the
  kernel's dispatched-event count for a fixed-seed traced run against
  a constant captured before the network code paths existed.  Any new
  import-time registration, bus subscription, or conditional that
  schedules even one extra event moves the count and fails loudly;
  together with the byte-identity goldens in
  ``tests/test_determinism.py`` this pins the "no network = no
  change" contract from both ends.
* **amplification** — does the NIC ring-saturation attack actually
  amplify the tail through the queue chain?  The gate requires the
  attacked run's client P99 to be at least 2x the unattacked
  network-routed baseline, and the P99/P50 dispersion ratio to at
  least double — tail-specific damage, not a uniform slowdown.

Usage::

    PYTHONPATH=src python benchmarks/bench_net.py            # full run
    PYTHONPATH=src python benchmarks/bench_net.py --check    # full gate
    PYTHONPATH=src python benchmarks/bench_net.py --quick --check  # CI

Results land in ``benchmarks/results/BENCH_net.json`` (or
``BENCH_net_quick.json`` with ``--quick``).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import platform
import sys
import time

RESULTS_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "results"
)

#: Dispatched-event counts of the fixed-seed neutrality scenario,
#: captured on the commit *before* the network subsystem existed.  A
#: ``network=None`` run must still hit these exactly: the count is a
#: complete fingerprint of the event schedule (every process wakeup
#: increments it), so "same count, same seed" plus the golden-CSV
#: byte-identity tests means the network code is provably dormant.
NEUTRALITY_EVENTS = {"quick": 18241, "full": 126662}

#: Amplification gates: the NIC attack must at least double the
#: network-routed baseline's P99 (the ISSUE's contract; measured
#: 30-400x), and widen its P99/P50 dispersion — tail-specific damage,
#: not a flat slowdown.  Dispersion is a tripwire, not a headline:
#: at full scale the attack is violent enough to drag the median too
#: (measured ~2.0x quick and full), so the floor carries margin.
P99_AMPLIFICATION_FLOOR = 2.0
DISPERSION_FLOOR = 1.5


def _neutral_scenario(quick: bool):
    from repro.experiments.configs import PRIVATE_CLOUD

    tag = "quick" if quick else "full"
    users, duration = (800, 6.0) if quick else (2000, 20.0)
    return dataclasses.replace(
        PRIVATE_CLOUD,
        name=f"bench-net-neutral-{tag}",
        users=users,
        duration=duration,
        warmup=1.0,
        seed=5,
    )


def _amplification_scenarios(quick: bool):
    from repro.experiments.configs import NET_ATTACK, NET_BASELINE

    if not quick:
        return NET_BASELINE, NET_ATTACK
    baseline = dataclasses.replace(
        NET_BASELINE.with_users(1000), duration=12.0, warmup=3.0
    )
    attack = dataclasses.replace(
        NET_ATTACK.with_users(1000), duration=12.0, warmup=3.0
    )
    return baseline, attack


def _percentiles(run) -> dict:
    import numpy as np

    rts = np.array(
        [r.response_time for r in run.client_requests() if not r.failed]
    )
    return {
        f"p{q:g}": float(np.percentile(rts, q)) for q in (50.0, 99.0, 99.9)
    }


def bench_neutrality(quick: bool) -> dict:
    """Fixed-seed ``network=None`` run vs the pre-network event count."""
    from repro.experiments.runner import run_rubbos

    scenario = _neutral_scenario(quick)
    t0 = time.perf_counter()
    run = run_rubbos(scenario, tracing=True)
    wall = time.perf_counter() - t0
    assert run.obs is not None
    events = run.obs.kernel.summary()["events_dispatched"]
    return {
        "users": scenario.users,
        "sim_seconds": scenario.duration,
        "wall_seconds": wall,
        "network": None,
        "events_dispatched": events,
        "expected_events": NEUTRALITY_EVENTS["quick" if quick else "full"],
    }


def bench_amplification(quick: bool) -> dict:
    """Network-routed baseline vs the NIC ring-saturation attack."""
    from repro.experiments.runner import run_rubbos

    baseline_scenario, attack_scenario = _amplification_scenarios(quick)

    cells = {}
    for label, scenario in (
        ("baseline", baseline_scenario),
        ("attack", attack_scenario),
    ):
        t0 = time.perf_counter()
        run = run_rubbos(scenario)
        wall = time.perf_counter() - t0
        net = run.network
        assert net is not None
        cells[label] = {
            "users": scenario.users,
            "sim_seconds": scenario.duration,
            "wall_seconds": wall,
            "quantiles": _percentiles(run),
            "completed": len(run.app.completed),
            "failed": len(run.app.failed),
            "net_messages": net.messages,
            "net_drops": net.drops,
            "net_bursts": (
                len(run.net_attack.bursts) if run.net_attack else 0
            ),
        }

    base_q = cells["baseline"]["quantiles"]
    atk_q = cells["attack"]["quantiles"]
    dispersion = {
        label: cell["quantiles"]["p99"] / cell["quantiles"]["p50"]
        for label, cell in cells.items()
    }
    return {
        "baseline": cells["baseline"],
        "attack": cells["attack"],
        "p99_amplification": atk_q["p99"] / base_q["p99"],
        "p999_amplification": atk_q["p99.9"] / base_q["p99.9"],
        "dispersion_baseline": dispersion["baseline"],
        "dispersion_attack": dispersion["attack"],
        "dispersion_amplification": (
            dispersion["attack"] / dispersion["baseline"]
        ),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: 800-user neutrality run, 1k-user amplification",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit nonzero unless the network=None event count matches "
             "the pre-network constant exactly and the NIC attack at "
             "least doubles the baseline P99 and P99/P50 dispersion",
    )
    parser.add_argument("--out", default=None, help="output JSON path")
    args = parser.parse_args()

    report = {
        "kind": "network-chain-benchmark",
        "quick": args.quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }

    neutrality = bench_neutrality(args.quick)
    report["neutrality"] = neutrality
    print(
        f"neutrality ({neutrality['users']} users x "
        f"{neutrality['sim_seconds']:g}s, network=None, traced): "
        f"{neutrality['events_dispatched']} events dispatched "
        f"(expected {neutrality['expected_events']}), "
        f"{neutrality['wall_seconds']:.2f}s wall"
    )

    amplification = bench_amplification(args.quick)
    report["amplification"] = amplification
    for label in ("baseline", "attack"):
        cell = amplification[label]
        q = cell["quantiles"]
        print(
            f"{label:<9} ({cell['users']} users x "
            f"{cell['sim_seconds']:g}s)  "
            f"p50 {q['p50'] * 1e3:7.1f}ms  p99 {q['p99'] * 1e3:7.1f}ms  "
            f"p99.9 {q['p99.9'] * 1e3:7.1f}ms  "
            f"{cell['net_drops']} net drops  "
            f"{cell['wall_seconds']:.2f}s wall"
        )
    print(
        f"amplification: p99 {amplification['p99_amplification']:.1f}x, "
        f"p99.9 {amplification['p999_amplification']:.1f}x, "
        f"p99/p50 dispersion "
        f"{amplification['dispersion_baseline']:.1f} -> "
        f"{amplification['dispersion_attack']:.1f} "
        f"({amplification['dispersion_amplification']:.1f}x)"
    )

    out = args.out or os.path.join(
        RESULTS_DIR,
        "BENCH_net_quick.json" if args.quick else "BENCH_net.json",
    )
    out_dir = os.path.dirname(out)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out}")

    if args.check:
        failed = False

        def gate(ok: bool, ok_msg: str, fail_msg: str) -> None:
            nonlocal failed
            if ok:
                print(f"OK: {ok_msg}")
            else:
                print(f"FAIL: {fail_msg}", file=sys.stderr)
                failed = True

        events = neutrality["events_dispatched"]
        expected = neutrality["expected_events"]
        gate(
            events == expected,
            f"network=None dispatched exactly {expected} events",
            f"network=None dispatched {events} events, expected "
            f"{expected} (the network subsystem perturbed a plain run)",
        )
        amp = amplification["p99_amplification"]
        gate(
            amp >= P99_AMPLIFICATION_FLOOR,
            f"NIC attack p99 amplification {amp:.1f}x >= "
            f"{P99_AMPLIFICATION_FLOOR:g}x",
            f"NIC attack p99 amplification {amp:.1f}x < "
            f"{P99_AMPLIFICATION_FLOOR:g}x",
        )
        disp = amplification["dispersion_amplification"]
        gate(
            disp >= DISPERSION_FLOOR,
            f"p99/p50 dispersion amplification {disp:.1f}x >= "
            f"{DISPERSION_FLOOR:g}x (tail-specific damage)",
            f"p99/p50 dispersion amplification {disp:.1f}x < "
            f"{DISPERSION_FLOOR:g}x (uniform slowdown, not tail "
            "amplification)",
        )
        gate(
            amplification["attack"]["net_drops"] > 0,
            f"attack run dropped "
            f"{amplification['attack']['net_drops']} packets in the "
            "chains (contention is real)",
            "attack run dropped no packets (NIC attacker not biting)",
        )
        if failed:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
