"""The monitoring dilemma (Section I's overhead argument), measured.

Sweeps monitoring granularity with a fixed per-sample agent cost on an
attacked system and asserts the refined shape: coarse is cheap but
blind, ultra-fine busts the budget, a narrow per-VM sweet spot exists
(the targeted-defense opening) but disappears at provider fleet scale.
"""

from conftest import run_once

from repro.experiments import run_overhead_study


def bench_monitoring_overhead_dilemma(benchmark, report):
    result = run_once(benchmark, run_overhead_study)
    report("overhead", result.render())
    by_interval = {p.interval: p for p in result.points}
    # Coarse monitoring is cheap but never sees the bursts.
    assert by_interval[60.0].within_budget
    assert not by_interval[60.0].sees_the_attack
    assert not by_interval[1.0].sees_the_attack
    # Ultra-fine sees everything but busts the 1% budget.
    assert by_interval[0.01].sees_the_attack
    assert not by_interval[0.01].within_budget
    # The per-VM sweet spot exists (targeted defense is affordable)...
    spots = result.sweet_spots()
    assert spots and all(p.interval < 1.0 for p in spots)
    # ...but vanishes at provider fleet scale (the paper's argument).
    assert all(
        result.fleet_overhead(p) >= 0.01 for p in spots
    )
