"""Substrate validation: the no-attack baseline matches queueing theory.

Before believing any attack number, the simulator itself must agree
with Mean Value Analysis on the closed-loop baseline: throughput and
bottleneck utilization across population sizes, and the location of
the saturation knee relative to the paper's operating point.
"""

from conftest import run_once

from repro.experiments import run_capacity_validation


def bench_capacity_baseline_matches_mva(benchmark, report, sweep_executor):
    result = run_once(
        benchmark,
        lambda: run_capacity_validation(executor=sweep_executor),
    )
    report("capacity", result.render())
    # Throughput within 15% of MVA at every population.
    assert result.within(0.15)
    # Utilization tracks too (MVA is exact for the closed network).
    for point in result.points:
        assert abs(
            point.measured_mysql_util - point.predicted_mysql_util
        ) < 0.08
    # The paper's 3500-user operating point sits below the knee — the
    # system is *unsaturated*, which is what makes MemCA interesting.
    assert result.knee > 3500
