"""Fig 6: cross-tier queue overflow vs. the tandem-queue model.

Regenerates the queue-length trajectories around one burst for both
service disciplines and overlays the closed-form prediction.
"""

from conftest import run_once

from repro.analysis import format_series
from repro.experiments import run_fig6


def bench_fig6_cross_tier_queue_overflow(benchmark, report, sweep_executor):
    result = run_once(
        benchmark, lambda: run_fig6(executor=sweep_executor)
    )
    lines = [result.render(), ""]
    for tier in result.scenario.tier_names:
        series = result.attack[tier]
        lines.append(
            format_series(
                f"attack-model {tier} queue",
                list(series.times),
                list(series.values),
                max_points=25,
                value_format="{:.0f}",
            )
        )
    report("fig6", "\n".join(lines))
    # 6(b): overflow propagates through every tier of the attack model.
    assert result.overflow_propagates()
    # 6(a): the tandem model confines queueing to the bottleneck.
    assert result.tandem_confined_to_back()
    # The closed form predicts each tier's cap is reached.
    for tier, q in zip(result.scenario.tier_names,
                       result.scenario.queue_sizes):
        assert max(result.predicted[tier]) >= 0.99 * q
