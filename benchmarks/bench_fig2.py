"""Fig 2: tail response-time amplification per tier (EC2 + private).

Regenerates both panels: percentile response time observed at each tier
and by the clients, under the MemCA lock attack (L=500 ms, I=2 s).
Paper claims checked: client p95 > 1 s; tail amplifies from MySQL
through Tomcat/Apache to the clients.
"""

from conftest import run_once

from repro.experiments import run_fig2_both


def bench_fig2_tail_amplification(benchmark, report, sweep_executor):
    ec2, private = run_once(
        benchmark, lambda: run_fig2_both(executor=sweep_executor)
    )
    report("fig2", ec2.render() + "\n\n" + private.render())
    for result in (ec2, private):
        assert result.amplified(95), f"{result.environment}: no amplification"
        client_p95 = result.curves["client"].at(95)
        assert client_p95 > 1.0, (
            f"{result.environment}: client p95 {client_p95:.3f}s <= 1s"
        )
        # Monotone back-to-front tail at p95: mysql <= tomcat/apache.
        mysql = result.curves["mysql"].at(95)
        assert result.curves["tomcat"].at(95) >= 0.9 * mysql
        assert result.curves["apache"].at(95) >= 0.9 * mysql
