"""Fig 7: percentile response time under the three service models.

(a) tandem/infinite: all tier curves overlap; (b) RPC with infinite
front queue: amplification without drops; (c) finite queues: client
peak dominated by TCP retransmissions.
"""

from conftest import run_once

from repro.experiments import run_fig7


def bench_fig7_tail_amplification_models(benchmark, report, sweep_executor):
    result = run_once(
        benchmark, lambda: run_fig7(executor=sweep_executor)
    )
    report("fig7", result.render())
    assert result.tandem_curves_overlap()
    assert result.amplification_without_drops()
    assert result.finite_queues_worst_for_clients()
    # 7(c): the finite-queue client tail crosses the 1 s TCP RTO...
    finite_client = result.cases["attack-finite"]["client"]
    assert finite_client.at(99) > 1.0
    # ...while the no-drop models stay well below it.
    assert result.cases["tandem"]["client"].at(99) < 0.5
    assert result.cases["attack-infinite-front"]["client"].at(99) < 0.5
