"""Second defense family: DIAL-style interference-aware balancing.

Replicate the bottleneck tier, attack one replica's host, and compare
static dispatch against latency-feedback re-weighting.  Asserts the
cited user-centric defense's claim on our substrate: interference can
be *routed around* without ever identifying its cause.
"""

from conftest import run_once

from repro.experiments import run_dial


def bench_dial_load_balancing(benchmark, report):
    result = run_once(benchmark, run_dial)
    report("dial", result.render())
    baseline = result.cases["no-attack"]
    static = result.cases["static"]
    dial = result.cases["dial"]
    # Replication alone already blunts the attack relative to the
    # single-instance deployment (p95 well under the 1 s RTO)...
    assert static.client_p95 < 1.0
    # ...but the static tail is still an order of magnitude above the
    # healthy baseline.
    assert static.client_p95 > 5 * baseline.client_p95
    # DIAL drains the attacked replica and restores a near-baseline tail.
    assert result.dial_protects
    assert dial.client_p95 < 3 * baseline.client_p95
    assert dial.attacked_share < 0.2
    # The weight floor keeps probing the suspect replica.
    assert min(dial.final_weights) >= 0.05 - 1e-9
