"""Fig 11: LLC-miss signatures of the two attack programs.

Regenerates host-level OProfile-style LLC-miss traces of the MySQL VM:
bus saturation leaves a periodic spike train; the memory-lock attack
leaves no pattern despite equal-or-worse damage.
"""

from conftest import run_once

from repro.experiments import run_fig11


def bench_fig11_llc_signatures(benchmark, report, sweep_executor):
    result = run_once(
        benchmark,
        lambda: run_fig11(duration=45.0, executor=sweep_executor),
    )
    report("fig11", result.render())
    # (a) periodic LLC misses under intermittent bus saturation.
    assert result.saturation_leaves_signature
    spike_period = result.reports["saturate"].detail
    # (b) no observable pattern under the memory-lock attack.
    assert result.lock_is_invisible
    # Both programs still damage the clients (the point of Fig 11):
    for program, summary in result.summaries.items():
        assert summary.front_drops > 0, (
            f"{program} attack caused no damage"
        )
