"""Seed-robustness: the Fig 2 headline result across 5 seeds.

The reproduction's claims should not hinge on one lucky random seed:
re-run the Fig 2 private-cloud scenario under five seeds and assert
the damage (client p95 > 1 s) and stealth (average bottleneck
utilization below the scaling trigger) hold in every replication.
"""

from dataclasses import replace

from conftest import run_once

from repro.analysis import format_replications, replicate
from repro.experiments import PRIVATE_CLOUD, run_rubbos

import numpy as np


def _metrics(seed: int) -> dict:
    scenario = replace(
        PRIVATE_CLOUD, name=f"replication/{seed}", seed=seed,
        duration=45.0,
    )
    run = run_rubbos(scenario)
    requests = run.client_requests()
    rts = np.array([r.response_time for r in requests])
    util = run.util_monitors["mysql"].series.between(
        scenario.warmup, scenario.duration
    )
    return {
        "client_p95_s": float(np.percentile(rts, 95)),
        "client_p50_ms": float(np.percentile(rts, 50) * 1e3),
        "fraction_above_rto": float(np.mean(rts > 1.0)),
        "mysql_avg_util": util.mean(),
        "drops": float(run.app.front.drops),
    }


def bench_replication_across_seeds(benchmark, report):
    replications = run_once(
        benchmark, lambda: replicate(_metrics, seeds=(1, 2, 3, 5, 8))
    )
    report(
        "replication",
        format_replications(
            replications, title="Fig 2 scenario across 5 seeds"
        ),
    )
    # Damage holds at every seed...
    assert replications["client_p95_s"].all_above(0.9)
    # ...while the median stays fast...
    assert replications["client_p50_ms"].all_below(50.0)
    # ...and average utilization never nears the 85% trigger.
    assert replications["mysql_avg_util"].all_below(0.85)
    # The damaged fraction is stable (not a one-seed fluke).
    assert replications["fraction_above_rto"].cv < 0.5
