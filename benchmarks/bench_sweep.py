"""Sweep-engine wall-clock benchmark (the parallel fan-out tentpole).

For each selected experiment, regenerates the figure three ways through
the sweep engine and reports wall-clock:

* **serial** — ``max_workers=1``, no cache (the pre-engine behavior);
* **parallel cold** — a process pool over an empty content-addressed
  cache (what a first regeneration on a multi-core box pays);
* **warm** — the same cache again (what every later regeneration pays:
  pure pickle reads, zero simulations — asserted).

Parallel speedup is only observable with real cores; the report records
``cpu_count`` so a 1-core CI box's numbers are not mistaken for the
engine's ceiling.  The warm-cache row is hardware-independent.

Usage::

    PYTHONPATH=src python benchmarks/bench_sweep.py           # full
    PYTHONPATH=src python benchmarks/bench_sweep.py --quick   # CI smoke

Results land in ``benchmarks/results/BENCH_sweep.json`` (or
``BENCH_sweep_quick.json`` with ``--quick``).
"""

from __future__ import annotations

import argparse
import contextlib
import io
import json
import os
import platform
import shutil
import sys
import tempfile
import time

RESULTS_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "results"
)

#: Experiments measured by default: a closed-loop RUBBoS pair (fig2),
#: a model-mode triple (fig7), the MVA population sweep (capacity), and
#: the 24-cell bandwidth grid (fig3).
DEFAULT_EXPERIMENTS = ("fig2", "fig7", "capacity", "fig3")


def _timed(fn) -> float:
    t0 = time.perf_counter()
    with contextlib.redirect_stdout(io.StringIO()):
        fn()
    return time.perf_counter() - t0


def measure_experiment(
    name: str, runner, quick: bool, workers: int, cache_root: str
) -> dict:
    from repro.experiments.parallel import RunCache, SweepExecutor

    cache_dir = os.path.join(cache_root, name)

    serial = SweepExecutor(max_workers=1, cache=None)
    serial_wall = _timed(lambda: runner(serial, quick))

    cold = SweepExecutor(
        max_workers=workers, cache=RunCache(cache_dir)
    )
    cold_wall = _timed(lambda: runner(cold, quick))

    warm = SweepExecutor(
        max_workers=workers, cache=RunCache(cache_dir)
    )
    warm_wall = _timed(lambda: runner(warm, quick))
    assert warm.stats.simulated == 0, (
        f"{name}: warm regeneration re-simulated "
        f"{warm.stats.simulated} of {warm.stats.cells} cells"
    )
    return {
        "cells": serial.stats.cells,
        "serial_wall_seconds": round(serial_wall, 3),
        "parallel_cold_wall_seconds": round(cold_wall, 3),
        "cold_speedup": round(serial_wall / cold_wall, 3),
        "warm_wall_seconds": round(warm_wall, 3),
        "warm_speedup": round(serial_wall / warm_wall, 1),
        "warm_simulated": warm.stats.simulated,
        "warm_cached": warm.stats.cached,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="shrunk scenario durations/grids (CI smoke)",
    )
    parser.add_argument(
        "--workers", type=int,
        default=min(4, os.cpu_count() or 1),
        help="pool size for the parallel rows (default: min(4, cores))",
    )
    parser.add_argument(
        "--experiments", nargs="+", default=list(DEFAULT_EXPERIMENTS),
        help=f"experiments to measure (default: {DEFAULT_EXPERIMENTS})",
    )
    parser.add_argument("--out", default=None, help="output JSON path")
    args = parser.parse_args()

    from repro.cli import _sweep_experiments

    runners = _sweep_experiments()
    unknown = [n for n in args.experiments if n not in runners]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        return 2

    report = {
        "kind": "sweep-benchmark",
        "quick": args.quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "workers": args.workers,
        "experiments": {},
    }
    if (os.cpu_count() or 1) < 2:
        report["note"] = (
            "single-core host: the process pool only adds overhead "
            "here, so cold_speedup < 1 is expected — parallel speedup "
            "needs real cores; warm_speedup is hardware-independent"
        )
    cache_root = tempfile.mkdtemp(prefix="bench-sweep-cache-")
    try:
        for name in args.experiments:
            result = measure_experiment(
                name, runners[name], args.quick, args.workers, cache_root
            )
            report["experiments"][name] = result
            print(
                f"{name:10s} {result['cells']:3d} cells: "
                f"serial {result['serial_wall_seconds']:7.2f}s | "
                f"parallel cold {result['parallel_cold_wall_seconds']:7.2f}s "
                f"({result['cold_speedup']:.2f}x) | "
                f"warm {result['warm_wall_seconds']:7.3f}s "
                f"({result['warm_speedup']:g}x, "
                f"{result['warm_simulated']} simulated)"
            )
    finally:
        shutil.rmtree(cache_root, ignore_errors=True)

    out = args.out or os.path.join(
        RESULTS_DIR,
        "BENCH_sweep_quick.json" if args.quick else "BENCH_sweep.json",
    )
    out_dir = os.path.dirname(out)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
