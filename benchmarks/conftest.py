"""Shared helpers for the figure-regeneration benchmarks.

Each bench regenerates one paper table/figure: it runs the experiment
once under pytest-benchmark (so the harness also tracks how long each
reproduction takes), prints the regenerated rows/series to the
terminal, and archives them under ``benchmarks/results/``.
"""

import os

import pytest

from repro.experiments.parallel import RunCache, SweepExecutor

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def sweep_executor():
    """The sweep executor every figure bench routes its runs through.

    Defaults to serial/uncached so benchmark timings measure the
    simulations themselves.  ``REPRO_SWEEP_WORKERS=N`` fans the cells
    across N processes; ``REPRO_SWEEP_CACHE=DIR`` adds the
    content-addressed run cache (a second bench run then times pure
    cache reads).
    """
    workers = int(os.environ.get("REPRO_SWEEP_WORKERS", "1"))
    cache_dir = os.environ.get("REPRO_SWEEP_CACHE")
    cache = RunCache(cache_dir) if cache_dir else None
    return SweepExecutor(max_workers=workers, cache=cache)


@pytest.fixture
def report(capsys):
    """Print a rendered figure to the terminal and archive it."""

    def _report(name: str, text: str) -> None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w") as fh:
            fh.write(text + "\n")
        with capsys.disabled():
            print()
            print(text)
            print(f"[saved to {path}]")

    return _report


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark clock."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
