"""Live-telemetry benchmark: sketch accuracy, overhead, detection.

Three questions about ``repro.obs.streaming``, each with a ``--check``
gate:

* **accuracy** — do the streaming P99/P99.9 estimates (log-bucketed
  sketches, O(1) memory per window) land within 5% relative error of
  the exact post-hoc percentiles computed from every completed request
  of the same run?
* **overhead** — does the live pipeline (windowed sketches, adaptive
  retention, lifecycle topics) cost at most 3% over the plain traced
  run it replaces?  Both modes stage spans for every request; the
  telemetry run additionally feeds four sketches per completion and
  *discards* most trace rows, so it should ride within noise of
  ``tracing=True`` while retaining orders of magnitude fewer traces.
* **retention** — with the base sample pinned at 1/64, does
  slow-request promotion still keep >= 99% of the requests above the
  true P99.9 as full traces?
* **detection** — does the latency-triggered defense (consuming live
  ``slo.violation`` topics) migrate the victim no later than the
  post-hoc utilization-episode baseline?

Methodology follows ``bench_kernel.py``: the overhead comparison runs
each mode in a **fresh python process** (the script re-execs itself
with ``--worker``) and takes the minimum over ``--repeat`` runs; the
accuracy/retention/detection sections are single deterministic runs
(fixed seeds) where wall time does not matter.

Usage::

    PYTHONPATH=src python benchmarks/bench_live.py            # full run
    PYTHONPATH=src python benchmarks/bench_live.py --check    # full gate
    PYTHONPATH=src python benchmarks/bench_live.py --quick --check  # CI

Results land in ``benchmarks/results/BENCH_live.json`` (or
``BENCH_live_quick.json`` with ``--quick``).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import platform
import subprocess
import sys
import time

RESULTS_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "results"
)

#: ``--check`` gates.  Accuracy/retention hold at any scale (the sketch
#: carries a 1% per-value guarantee); the overhead gate is tight only
#: in full mode — quick mode runs once in-process on a possibly noisy
#: box, so it gets a gross-regression tripwire instead.
ACCURACY_RELATIVE_ERROR = 0.05
RETENTION_FLOOR = 0.99
OVERHEAD_VS_TRACED = {"full": 0.03, "quick": 0.20}


def _fig9_scenario(quick: bool):
    from repro.experiments.configs import PRIVATE_CLOUD

    if quick:
        return dataclasses.replace(
            PRIVATE_CLOUD, users=2000, duration=10.0, warmup=0.0
        )
    return dataclasses.replace(PRIVATE_CLOUD, warmup=0.0)


def run_once(mode: str, quick: bool) -> dict:
    """One timed run in the current process (overhead section)."""
    from repro.experiments.runner import run_rubbos
    from repro.obs import TelemetryConfig

    scenario = _fig9_scenario(quick)
    kwargs = {}
    if mode == "telemetry":
        kwargs["telemetry"] = TelemetryConfig()
    elif mode == "traced":
        kwargs["tracing"] = True
    elif mode != "plain":
        raise ValueError(f"unknown mode {mode!r}")
    t0 = time.perf_counter()
    run = run_rubbos(scenario, **kwargs)
    wall = time.perf_counter() - t0
    return {
        "mode": mode,
        "wall_seconds": wall,
        "completed_requests": len(run.app.completed),
    }


def measure_fresh(mode: str, quick: bool, repeat: int) -> dict:
    """Min-over-repeats, one fresh subprocess per repeat."""
    walls = []
    best = None
    for _ in range(repeat):
        cmd = [
            sys.executable,
            os.path.abspath(__file__),
            "--worker",
            "--mode", mode,
        ]
        if quick:
            cmd.append("--quick")
        env = dict(os.environ)
        src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "src",
        )
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            cmd, env=env, check=True, capture_output=True, text=True
        )
        result = json.loads(out.stdout.strip().splitlines()[-1])
        walls.append(result["wall_seconds"])
        if best is None or result["wall_seconds"] < best["wall_seconds"]:
            best = result
    best["wall_seconds_repeats"] = walls
    return best


def bench_accuracy(quick: bool) -> dict:
    """Streaming estimates vs exact post-hoc percentiles, one run.

    The base stride is pinned at 1/64 (no budget controller) so the
    retention number answers the ISSUE's question exactly: does
    promotion alone rescue the top-0.1% tail from a 1.6% base sample?
    """
    import numpy as np

    from repro.experiments.runner import run_rubbos
    from repro.obs import TelemetryConfig

    scenario = _fig9_scenario(quick)
    config = TelemetryConfig(trace_budget_per_window=None)
    run = run_rubbos(scenario, telemetry=config)
    live = run.telemetry
    completed = run.app.completed
    rts = np.array([r.response_time for r in completed], dtype=float)

    quantiles = {}
    for q in (50.0, 99.0, 99.9):
        exact = float(np.percentile(rts, q))
        streamed = live.pipeline.estimate(q)
        quantiles[f"p{q:g}"] = {
            "exact": exact,
            "streaming": streamed,
            "relative_error": abs(streamed - exact) / exact,
        }

    true_p999 = float(np.percentile(rts, 99.9))
    tail = [r for r in completed if r.response_time >= true_p999]
    tail_traced = sum(1 for r in tail if r.trace is not None)
    tracer = live.tracer
    return {
        "users": scenario.users,
        "sim_seconds": scenario.duration,
        "completed_requests": len(completed),
        "streamed_observations": live.pipeline.cumulative["e2e"].count,
        "quantiles": quantiles,
        "tail": {
            "true_p99.9_seconds": true_p999,
            "requests_above": len(tail),
            "retained_as_traces": tail_traced,
            "retention": tail_traced / len(tail) if tail else 1.0,
        },
        "traces": {
            "stride": tracer.stride,
            "base": tracer.base_retained,
            "promoted": tracer.promoted,
            "discarded": tracer.discarded,
        },
    }


def bench_detection(quick: bool) -> dict:
    """First defensive migration: live latency trigger vs post-hoc.

    Same scenario, same defense parameters; only the episode source
    differs (``slo.violation`` topics vs harvested utilization spans).
    """
    from repro.experiments.configs import PRIVATE_CLOUD
    from repro.experiments.defense import run_rubbos_with_defense

    scenario = dataclasses.replace(
        PRIVATE_CLOUD,
        name="bench-live-defense",
        duration=20.0 if quick else 45.0,
    )
    out = {}
    for trigger in ("utilization", "latency"):
        run, defense, _ = run_rubbos_with_defense(
            scenario, None, 8, trigger=trigger
        )
        out[trigger] = {
            "migrations": len(defense.migrations),
            "first_migration": (
                defense.migrations[0].time if defense.migrations else None
            ),
        }
        if trigger == "latency" and run.telemetry is not None:
            detector = run.telemetry.detector
            out[trigger]["violations"] = len(detector.violations)
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: 2k users x 10 sim-s, in-process overhead runs",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit nonzero unless accuracy <= 5%% rel err, tail "
             "retention >= 99%%, telemetry overhead within budget of "
             "the traced run, and the latency trigger migrates no "
             "later than the utilization baseline",
    )
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--out", default=None, help="output JSON path")
    parser.add_argument(
        "--worker", action="store_true", help=argparse.SUPPRESS
    )
    parser.add_argument("--mode", default=None, help=argparse.SUPPRESS)
    args = parser.parse_args()

    if args.worker:
        print(json.dumps(run_once(args.mode or "plain", args.quick)))
        return 0

    report = {
        "kind": "live-telemetry-benchmark",
        "quick": args.quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }

    accuracy = bench_accuracy(args.quick)
    report["accuracy"] = accuracy
    print(
        f"accuracy ({accuracy['completed_requests']} requests, "
        f"stride 1/{accuracy['traces']['stride']}):"
    )
    for name, cell in accuracy["quantiles"].items():
        print(
            f"  {name:6s} exact {cell['exact'] * 1e3:8.1f}ms  "
            f"streaming {cell['streaming'] * 1e3:8.1f}ms  "
            f"rel err {cell['relative_error'] * 100:.2f}%"
        )
    tail = accuracy["tail"]
    print(
        f"  tail   {tail['retained_as_traces']}/{tail['requests_above']} "
        f"requests above true p99.9 retained as full traces "
        f"({tail['retention'] * 100:.1f}%)"
    )

    report["overhead"] = {}
    for mode in ("plain", "traced", "telemetry"):
        if args.quick:
            result = run_once(mode, True)
        else:
            result = measure_fresh(mode, False, args.repeat)
        report["overhead"][mode] = result
        print(
            f"overhead {mode:9s} {result['wall_seconds']:.3f}s wall "
            f"({result['completed_requests']} requests)"
        )
    traced = report["overhead"]["traced"]["wall_seconds"]
    telemetry = report["overhead"]["telemetry"]["wall_seconds"]
    plain = report["overhead"]["plain"]["wall_seconds"]
    report["overhead"]["telemetry_vs_traced"] = telemetry / traced - 1.0
    report["overhead"]["telemetry_vs_plain"] = telemetry / plain - 1.0
    print(
        f"overhead telemetry vs traced "
        f"{report['overhead']['telemetry_vs_traced'] * 100:+.1f}%, "
        f"vs plain "
        f"{report['overhead']['telemetry_vs_plain'] * 100:+.1f}%"
    )

    detection = bench_detection(args.quick)
    report["detection"] = detection
    for trigger, cell in detection.items():
        first = cell["first_migration"]
        print(
            f"detection {trigger:12s} "
            f"{cell['migrations']} migrations, first at "
            + (f"{first:.2f}s" if first is not None else "never")
        )

    out = args.out or os.path.join(
        RESULTS_DIR,
        "BENCH_live_quick.json" if args.quick else "BENCH_live.json",
    )
    out_dir = os.path.dirname(out)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out}")

    if args.check:
        failed = False

        def gate(ok: bool, ok_msg: str, fail_msg: str) -> None:
            nonlocal failed
            if ok:
                print(f"OK: {ok_msg}")
            else:
                print(f"FAIL: {fail_msg}", file=sys.stderr)
                failed = True

        for name in ("p99", "p99.9"):
            err = accuracy["quantiles"][name]["relative_error"]
            gate(
                err <= ACCURACY_RELATIVE_ERROR,
                f"{name} streaming rel err {err * 100:.2f}% <= "
                f"{ACCURACY_RELATIVE_ERROR * 100:.0f}%",
                f"{name} streaming rel err {err * 100:.2f}% > "
                f"{ACCURACY_RELATIVE_ERROR * 100:.0f}%",
            )
        retention = tail["retention"]
        gate(
            retention >= RETENTION_FLOOR,
            f"tail retention {retention * 100:.1f}% >= "
            f"{RETENTION_FLOOR * 100:.0f}%",
            f"tail retention {retention * 100:.1f}% < "
            f"{RETENTION_FLOOR * 100:.0f}% at 1/64 base sampling",
        )
        budget = OVERHEAD_VS_TRACED["quick" if args.quick else "full"]
        overhead = report["overhead"]["telemetry_vs_traced"]
        gate(
            overhead <= budget,
            f"telemetry overhead vs traced {overhead * 100:+.1f}% <= "
            f"{budget * 100:.0f}%",
            f"telemetry run {overhead * 100:+.1f}% slower than traced "
            f"(budget {budget * 100:.0f}%)",
        )
        live_first = detection["latency"]["first_migration"]
        posthoc_first = detection["utilization"]["first_migration"]
        gate(
            live_first is not None
            and posthoc_first is not None
            and live_first <= posthoc_first,
            f"latency trigger migrated at {live_first}s, no later than "
            f"utilization baseline at {posthoc_first}s",
            f"latency trigger ({live_first}) later than utilization "
            f"baseline ({posthoc_first})",
        )
        if failed:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
