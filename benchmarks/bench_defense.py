"""Future-work extension: millibottleneck-triggered migration defense.

Evaluates the defense direction the paper's conclusion calls for:
targeted fine-grained monitoring of the latency-critical VM plus
live migration away from the contested host, including the
cat-and-mouse dynamics when the adversary re-co-locates.
"""

from conftest import run_once

from repro.experiments import run_defense


def bench_defense_breaks_the_attack(benchmark, report, sweep_executor):
    result = run_once(
        benchmark, lambda: run_defense(executor=sweep_executor)
    )
    report("defense", result.render())
    assert result.migrations, "defense never triggered"
    first = result.migrations[0].time
    # Before migration: the familiar > 1 s tail.
    assert result.p95_between(result.scenario.warmup, first) > 0.5
    # After migration: back to healthy baseline.
    assert result.p95_between(first + 10.0,
                              result.scenario.duration) < 0.1


def bench_defense_cat_and_mouse(benchmark, report, sweep_executor):
    result = run_once(
        benchmark,
        lambda: run_defense(
            recolocate_after=25.0, executor=sweep_executor
        ),
    )
    report("defense_cat_and_mouse", result.render())
    # The adversary re-co-locates and forces repeated migrations.
    assert len(result.migrations) >= 2
    assert result.recolocations
    # Damage recurs after each re-co-location...
    worst_after_recolocation = max(
        result.p95_between(t, t + 15.0) for t in result.recolocations[:-1]
    ) if len(result.recolocations) > 1 else result.p95_between(
        result.recolocations[0], result.recolocations[0] + 15.0
    )
    assert worst_after_recolocation > 0.3
    # ...and every migration restores the tail within its window.
    for migration in result.migrations:
        try:
            recovered = result.p95_between(
                migration.time + 2.0, migration.time + 12.0
            )
        except ValueError:
            continue  # migration too close to the end of the run
        assert recovered < 0.6
