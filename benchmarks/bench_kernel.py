"""Kernel/trace-storage throughput benchmark (the PR-3 tentpole gate).

Measures the 10k-user RUBBoS scenario (60 simulated seconds, private
cloud, MemCA attack on) with tracing off and with full-population
tracing, and compares against the committed pre-rewrite baseline in
``benchmarks/results/BENCH_kernel_baseline_prepr.json``.

Methodology: every measurement runs in a **fresh python process** (the
script re-execs itself with ``--worker``) because retained state from a
prior in-process run — a ~100 MB object graph the allocator and GC keep
walking — inflates subsequent wall times by 15-25%.  The reported
number per mode is the minimum over ``--repeat`` runs, the standard
noise-rejecting statistic for throughput benchmarks on shared machines.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernel.py            # full run
    PYTHONPATH=src python benchmarks/bench_kernel.py --check    # full gate
    PYTHONPATH=src python benchmarks/bench_kernel.py --quick --check  # CI

``--check`` enforces the PR-5 calendar-queue budgets: traced 10k-users
x 60 sim-s <= 6.5 s wall (>= 3x over the pre-optimization 19.462 s
baseline) and untraced <= 4.5 s.  With ``--quick`` the budgets are the
loose CI variants below — small enough to catch a multiple-x
regression, large enough for shared runners — plus an *exact*
``events_dispatched`` equality check on the traced run, which is a
noise-free determinism/accounting gate (any change to the event
schedule shifts it).

Results land in ``benchmarks/results/BENCH_kernel.json`` (or
``BENCH_kernel_quick.json`` with ``--quick``).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import platform
import subprocess
import sys
import time

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")
BASELINE_PATH = os.path.join(RESULTS_DIR, "BENCH_kernel_baseline_prepr.json")

#: Baseline-file scenario keys per tracing mode.
SCENARIO_KEYS = {
    False: "users10k_60s_untraced",
    True: "users10k_60s_traced_full_population",
}

#: ``--check`` wall-time budgets (seconds), full 10k x 60 s scenario.
#: Traced: >= 3x over the 19.462 s pre-optimization baseline.
BUDGETS = {"traced": 6.5, "untraced": 4.5}

#: ``--quick --check`` budgets: ~8x headroom over a healthy run (0.48 s
#: traced / 0.37 s untraced on the reference box) so a loaded shared CI
#: runner still passes; this is a gross-regression tripwire, not a
#: perf gate — the full ``--check`` run owns the real budgets.
QUICK_BUDGETS = {"traced": 4.0, "untraced": 3.0}

#: Exact event count of the quick traced scenario (2k users x 10 s).
#: Equality is a noise-free determinism gate: any change to the event
#: schedule — an extra timer, a lost wakeup, a reordered grant — shifts
#: it, independent of how slow the box is.
QUICK_EVENTS = 74_949


def run_once(users: int, duration: float, tracing: bool) -> dict:
    """One measurement in the current process; returns the result dict."""
    from repro.experiments.configs import PRIVATE_CLOUD
    from repro.experiments.runner import run_rubbos

    scenario = dataclasses.replace(
        PRIVATE_CLOUD, users=users, duration=duration, warmup=0.0
    )
    t0 = time.perf_counter()
    run = run_rubbos(scenario, tracing=tracing)
    wall = time.perf_counter() - t0
    events = None
    if tracing and run.obs is not None:
        events = run.obs.kernel.events_dispatched
    return {
        "users": users,
        "sim_seconds": duration,
        "tracing": tracing,
        "wall_seconds": wall,
        "completed_requests": len(run.app.completed),
        "events_dispatched": events,
        "wall_per_sim_second": wall / duration,
    }


def measure_fresh(
    users: int, duration: float, tracing: bool, repeat: int
) -> dict:
    """Min-over-repeats, one fresh subprocess per repeat."""
    walls = []
    best = None
    for _ in range(repeat):
        cmd = [
            sys.executable,
            os.path.abspath(__file__),
            "--worker",
            "--users", str(users),
            "--duration", str(duration),
        ]
        if tracing:
            cmd.append("--tracing")
        env = dict(os.environ)
        src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
        )
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            cmd, env=env, check=True, capture_output=True, text=True
        )
        result = json.loads(out.stdout.strip().splitlines()[-1])
        walls.append(result["wall_seconds"])
        if best is None or result["wall_seconds"] < best["wall_seconds"]:
            best = result
    best["wall_seconds_repeats"] = walls
    return best


def load_baseline() -> dict:
    if not os.path.exists(BASELINE_PATH):
        return {}
    with open(BASELINE_PATH) as fh:
        return json.load(fh).get("scenarios", {})


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: 2k users x 10 sim-seconds, single in-process run",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit nonzero unless the runs meet the wall-time budgets "
             "(full: traced <= 6.5s, untraced <= 4.5s; quick: loose CI "
             "budgets plus exact traced event-count equality)",
    )
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--users", type=int, default=None)
    parser.add_argument("--duration", type=float, default=None)
    parser.add_argument("--out", default=None, help="output JSON path")
    parser.add_argument(
        "--worker", action="store_true", help=argparse.SUPPRESS
    )
    parser.add_argument(
        "--tracing", action="store_true", help=argparse.SUPPRESS
    )
    args = parser.parse_args()

    if args.worker:
        result = run_once(
            args.users or 10000, args.duration or 60.0, args.tracing
        )
        print(json.dumps(result))
        return 0

    users = args.users or (2000 if args.quick else 10000)
    duration = args.duration or (10.0 if args.quick else 60.0)
    baseline = load_baseline()
    report = {
        "kind": "kernel-benchmark",
        "quick": args.quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "users": users,
        "sim_seconds": duration,
        "scenarios": {},
    }
    for tracing in (False, True):
        label = "traced" if tracing else "untraced"
        if args.quick:
            result = run_once(users, duration, tracing)
        else:
            result = measure_fresh(users, duration, tracing, args.repeat)
        report["scenarios"][label] = result
        line = (
            f"{label:9s} {users} users x {duration:g} sim-s: "
            f"{result['wall_seconds']:.3f}s wall "
            f"({result['completed_requests']} requests)"
        )
        ref = baseline.get(SCENARIO_KEYS[tracing])
        if ref and not args.quick and users == 10000 and duration == 60.0:
            speedup = ref["wall_seconds"] / result["wall_seconds"]
            result["baseline_wall_seconds"] = ref["wall_seconds"]
            result["speedup_vs_prepr"] = speedup
            line += f"  [{speedup:.2f}x vs pre-PR {ref['wall_seconds']:.2f}s]"
        print(line)

    out = args.out or os.path.join(
        RESULTS_DIR,
        "BENCH_kernel_quick.json" if args.quick else "BENCH_kernel.json",
    )
    out_dir = os.path.dirname(out)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out}")

    if args.check:
        failed = False
        budgets = QUICK_BUDGETS if args.quick else BUDGETS
        custom = args.users is not None or args.duration is not None
        for label, budget in budgets.items():
            wall = report["scenarios"][label]["wall_seconds"]
            if custom:
                print(f"SKIP {label}: budgets assume the default scenario")
            elif wall > budget:
                print(
                    f"FAIL: {label} run took {wall:.2f}s "
                    f"(budget {budget:.1f}s)",
                    file=sys.stderr,
                )
                failed = True
            else:
                print(f"OK: {label} run {wall:.2f}s <= {budget:.1f}s")
        if args.quick and not custom:
            events = report["scenarios"]["traced"]["events_dispatched"]
            if events != QUICK_EVENTS:
                print(
                    f"FAIL: quick traced run dispatched {events} events, "
                    f"expected exactly {QUICK_EVENTS} — the event "
                    "schedule changed",
                    file=sys.stderr,
                )
                failed = True
            else:
                print(f"OK: quick traced event count {events} (exact)")
        if failed:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
