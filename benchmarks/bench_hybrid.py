"""Hybrid fluid/DES benchmark: tail convergence and population scale.

Two questions about ``repro.sim.hybrid``, each with a ``--check`` gate:

* **convergence** — as ``sample_fraction`` sweeps toward 1.0, do the
  sampled-population tail percentiles (P50/P99/P99.9) converge on the
  full-DES run of the same scenario?  At the top of the sweep the two
  engines must agree to <= 5% relative error; at fraction 1.0 the
  hybrid path degenerates to the plain kernel (zero bulk => the fluid
  engine is never built) and the gate hardens to **byte identity**:
  the post-warmup request table must equal the full-DES table exactly,
  column for column.  Mid-sweep fractions get looser, honestly
  measured tripwires — a mean-field bulk is an approximation, and its
  error at f=0.25 is part of the result, not a failure.
* **scale** — does a 1 000 000-user x 60 s scenario (capacities
  co-scaled through ``RubbosScenario.with_users`` so the operating
  point stays put) complete in minutes on one core, at least 50x
  faster than the extrapolated wall time of the full-DES kernel?  The
  extrapolation base is a measured full-DES run at a feasible
  population, scaled linearly in users — generous to the kernel, since
  its calendar queue degrades superlinearly under the event densities
  a literal 1M-user run would produce.

Usage::

    PYTHONPATH=src python benchmarks/bench_hybrid.py            # full run
    PYTHONPATH=src python benchmarks/bench_hybrid.py --check    # full gate
    PYTHONPATH=src python benchmarks/bench_hybrid.py --quick --check  # CI

Results land in ``benchmarks/results/BENCH_hybrid.json`` (or
``BENCH_hybrid_quick.json`` with ``--quick``).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import platform
import sys
import time

RESULTS_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "results"
)

#: ``--check`` gates.  The top of the sweep must match full DES; the
#: interior fractions carry measured-with-margin tripwires so a coupling
#: regression (fluid background no longer pushing the sampled tail to
#: the right operating point) fails loudly without freezing the
#: approximation error itself into the contract.
CONVERGENCE_FRACTIONS = (0.25, 0.5, 1.0)
TOP_RELATIVE_ERROR = 0.05
#: Interior-fraction tripwires — gross-regression alarms, not accuracy
#: claims.  P99 is the paper's contract and tracks full DES within a
#: few percent at every fraction.  The median is where the mean-field
#: approximation is visibly coarse: the fluid background never fully
#: drains between bursts, so sampled requests see residual sharing the
#: discrete kernel resolves to an idle server (measured ~1.1-2.1x).
#: P99.9 at reduced fractions is resolution-limited — the top-0.1%
#: events are retransmission outliers (3 s SYN-retry class) that a
#: 650-user sample rarely contains at all (measured ~0.65x low).
MID_RELATIVE_ERROR = {"p50": 3.0, "p99": 0.35, "p99.9": 1.0}
SPEEDUP_FLOOR = {"full": 50.0, "quick": 8.0}

#: Scale-demo shape: population, sim seconds, and the fraction of users
#: kept discrete.  Full mode is the ISSUE's headline configuration —
#: 1M users for a minute, ~2.6k of them in the kernel.
SCALE = {
    "full": {"users": 1_000_000, "duration": 60.0, "fraction": 0.0026,
             "base_users": 20_000},
    "quick": {"users": 100_000, "duration": 12.0, "fraction": 0.01,
              "base_users": 4_000},
}


def _scenario(quick: bool):
    from repro.experiments.configs import PRIVATE_CLOUD

    if quick:
        return dataclasses.replace(
            PRIVATE_CLOUD.with_users(1000), duration=12.0, warmup=4.0
        )
    return PRIVATE_CLOUD


def _percentiles(summary) -> dict:
    import numpy as np

    rts = summary.client_response_times()
    return {
        f"p{q:g}": float(np.percentile(rts, q)) for q in (50.0, 99.0, 99.9)
    }


def bench_convergence(quick: bool) -> dict:
    """Sweep sample_fraction -> 1.0 against one full-DES reference."""
    import numpy as np

    from repro.experiments.runner import run_rubbos
    from repro.experiments.summary import summarize_rubbos
    from repro.sim.hybrid import HybridConfig

    scenario = _scenario(quick)
    t0 = time.perf_counter()
    reference = summarize_rubbos(run_rubbos(scenario))
    full_wall = time.perf_counter() - t0
    exact = _percentiles(reference)

    sweep = []
    for fraction in CONVERGENCE_FRACTIONS:
        hybrid = HybridConfig(sample_fraction=fraction)
        t0 = time.perf_counter()
        summary = summarize_rubbos(run_rubbos(scenario, hybrid=hybrid))
        wall = time.perf_counter() - t0
        estimated = _percentiles(summary)
        split = hybrid.split(scenario.users)
        sweep.append({
            "sample_fraction": fraction,
            "sampled_users": split.sampled,
            "bulk_users": split.bulk,
            "wall_seconds": wall,
            "quantiles": {
                name: {
                    "hybrid": estimated[name],
                    "full_des": exact[name],
                    "relative_error": (
                        abs(estimated[name] - exact[name]) / exact[name]
                    ),
                }
                for name in exact
            },
            "weighted_throughput": summary.weighted_throughput(),
            # Byte-identity evidence at fraction 1.0: the whole
            # post-warmup request table, not just its percentiles.
            # Raw-bytes comparison, because NaN cells (requests that
            # never reached a tier) compare unequal element-wise.
            "identical_to_full_des": (
                summary.requests.tobytes() == reference.requests.tobytes()
                if fraction == 1.0 else None
            ),
        })
    return {
        "users": scenario.users,
        "sim_seconds": scenario.duration,
        "full_des_wall_seconds": full_wall,
        "full_des_throughput": reference.weighted_throughput(),
        "sweep": sweep,
    }


def bench_scale(quick: bool) -> dict:
    """The headline run: 1M users x 60 s vs extrapolated full DES."""
    from repro.experiments.configs import PRIVATE_CLOUD
    from repro.experiments.runner import run_rubbos
    from repro.experiments.summary import summarize_rubbos
    from repro.sim.hybrid import HybridConfig

    shape = SCALE["quick" if quick else "full"]

    # Extrapolation base: full DES at a population the kernel can
    # actually finish, same sim duration, capacities co-scaled.
    base = dataclasses.replace(
        PRIVATE_CLOUD.with_users(shape["base_users"]),
        duration=shape["duration"],
    )
    t0 = time.perf_counter()
    base_summary = summarize_rubbos(run_rubbos(base))
    base_wall = time.perf_counter() - t0

    scenario = dataclasses.replace(
        PRIVATE_CLOUD.with_users(shape["users"]),
        duration=shape["duration"],
    )
    hybrid = HybridConfig(sample_fraction=shape["fraction"])
    split = hybrid.split(scenario.users)
    t0 = time.perf_counter()
    summary = summarize_rubbos(run_rubbos(scenario, hybrid=hybrid))
    wall = time.perf_counter() - t0

    extrapolated = base_wall * (shape["users"] / shape["base_users"])
    fluid = summary.fluid
    return {
        "users": shape["users"],
        "sim_seconds": shape["duration"],
        "sampled_users": split.sampled,
        "bulk_users": split.bulk,
        "hybrid_wall_seconds": wall,
        "realtime_factor": shape["duration"] / wall,
        "weighted_throughput": summary.weighted_throughput(),
        "quantiles": _percentiles(summary),
        "fluid_completed": fluid.completed if fluid else None,
        "fluid_dropped": fluid.dropped if fluid else None,
        "fluid_peak_queues": dict(fluid.peak_queues) if fluid else None,
        "extrapolation_base": {
            "users": shape["base_users"],
            "wall_seconds": base_wall,
        },
        "extrapolated_full_des_wall_seconds": extrapolated,
        "speedup_vs_extrapolated": extrapolated / wall,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: 1k-user convergence sweep, 100k-user scale demo",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit nonzero unless the sweep converges (<= 5%% rel err "
             "and byte-identical tables at fraction 1.0) and the scale "
             "run beats the extrapolated full-DES wall time by the "
             "floor factor",
    )
    parser.add_argument("--out", default=None, help="output JSON path")
    args = parser.parse_args()

    report = {
        "kind": "hybrid-fluid-des-benchmark",
        "quick": args.quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }

    convergence = bench_convergence(args.quick)
    report["convergence"] = convergence
    print(
        f"convergence ({convergence['users']} users x "
        f"{convergence['sim_seconds']:g}s, full DES "
        f"{convergence['full_des_wall_seconds']:.2f}s wall):"
    )
    for cell in convergence["sweep"]:
        errs = "  ".join(
            f"{name} {q['hybrid'] * 1e3:7.1f}ms ({q['relative_error'] * 100:+5.1f}%)"
            for name, q in cell["quantiles"].items()
        )
        ident = (
            "  [identical]" if cell["identical_to_full_des"] else ""
        )
        print(
            f"  f={cell['sample_fraction']:<5g} "
            f"{cell['sampled_users']:>6d} sampled  {errs}"
            f"  {cell['wall_seconds']:.2f}s wall{ident}"
        )

    scale = bench_scale(args.quick)
    report["scale"] = scale
    print(
        f"scale: {scale['users']:,} users x {scale['sim_seconds']:g}s "
        f"({scale['sampled_users']:,} sampled + {scale['bulk_users']:,} "
        f"fluid)"
    )
    print(
        f"  hybrid wall {scale['hybrid_wall_seconds']:.1f}s "
        f"({scale['realtime_factor']:.1f}x realtime), "
        f"{scale['weighted_throughput']:,.0f} req/s population throughput"
    )
    print(
        f"  extrapolated full DES "
        f"{scale['extrapolated_full_des_wall_seconds']:.0f}s "
        f"(measured {scale['extrapolation_base']['wall_seconds']:.1f}s at "
        f"{scale['extrapolation_base']['users']:,} users) -> "
        f"{scale['speedup_vs_extrapolated']:.0f}x speedup"
    )

    out = args.out or os.path.join(
        RESULTS_DIR,
        "BENCH_hybrid_quick.json" if args.quick else "BENCH_hybrid.json",
    )
    out_dir = os.path.dirname(out)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out}")

    if args.check:
        failed = False

        def gate(ok: bool, ok_msg: str, fail_msg: str) -> None:
            nonlocal failed
            if ok:
                print(f"OK: {ok_msg}")
            else:
                print(f"FAIL: {fail_msg}", file=sys.stderr)
                failed = True

        top = convergence["sweep"][-1]
        assert top["sample_fraction"] == 1.0
        for name, cell in top["quantiles"].items():
            err = cell["relative_error"]
            gate(
                err <= TOP_RELATIVE_ERROR,
                f"{name} at f=1.0 rel err {err * 100:.2f}% <= "
                f"{TOP_RELATIVE_ERROR * 100:.0f}%",
                f"{name} at f=1.0 rel err {err * 100:.2f}% > "
                f"{TOP_RELATIVE_ERROR * 100:.0f}%",
            )
        gate(
            bool(top["identical_to_full_des"]),
            "f=1.0 request table byte-identical to full DES",
            "f=1.0 request table differs from full DES (the zero-bulk "
            "fast path perturbed the kernel)",
        )
        for cell in convergence["sweep"][:-1]:
            for name, q in cell["quantiles"].items():
                budget = MID_RELATIVE_ERROR[name]
                err = q["relative_error"]
                gate(
                    err <= budget,
                    f"{name} at f={cell['sample_fraction']:g} rel err "
                    f"{err * 100:.1f}% <= {budget * 100:.0f}%",
                    f"{name} at f={cell['sample_fraction']:g} rel err "
                    f"{err * 100:.1f}% > {budget * 100:.0f}% "
                    "(coupling regression?)",
                )
        floor = SPEEDUP_FLOOR["quick" if args.quick else "full"]
        speedup = scale["speedup_vs_extrapolated"]
        gate(
            speedup >= floor,
            f"scale speedup {speedup:.0f}x >= {floor:.0f}x "
            f"(wall {scale['hybrid_wall_seconds']:.1f}s for "
            f"{scale['users']:,} users x {scale['sim_seconds']:g}s)",
            f"scale speedup {speedup:.0f}x < {floor:.0f}x",
        )
        if failed:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
