"""Ablations of MemCA's design choices (DESIGN.md §4).

Sweeps each attack knob and the two structural mechanisms to confirm
what makes the attack work: burst length vs. stealth, interval vs.
damaged fraction, Condition 2's degradation threshold, queue-size
ordering, and the synchronous-RPC coupling itself.
"""

from conftest import run_once

from repro.experiments import (
    compare_attack_programs,
    condition1_ablation,
    rpc_vs_tandem,
    sweep_burst_length,
    sweep_degradation,
    sweep_ecn_threshold,
    sweep_interval,
    sweep_rto_schedule,
    sweep_service_distribution,
    sweep_switch_buffer,
    sweep_target_tier,
)


def bench_ablation_burst_length(benchmark, report, sweep_executor):
    result = run_once(
        benchmark, lambda: sweep_burst_length(executor=sweep_executor)
    )
    report("ablation_length", result.render())
    fractions = [p.fraction_above_rto for p in result.points]
    utils = [p.mean_mysql_util for p in result.points]
    # Longer bursts: monotonically more damage and more average load.
    assert fractions == sorted(fractions)
    assert utils == sorted(utils)
    # Sub-fill-time bursts are harmless (L=50ms < build-up).
    assert fractions[0] < 0.01


def bench_ablation_interval(benchmark, report, sweep_executor):
    result = run_once(
        benchmark, lambda: sweep_interval(executor=sweep_executor)
    )
    report("ablation_interval", result.render())
    # rho = P_D / I: damage dilutes as the interval grows (I >= 2s;
    # at I=1s retransmission collisions distort the closed loop).
    diluting = [p for p in result.points if p.label != "I=1s"]
    fractions = [p.fraction_above_rto for p in diluting]
    assert fractions == sorted(fractions, reverse=True)


def bench_ablation_degradation(benchmark, report, sweep_executor):
    result = run_once(
        benchmark, lambda: sweep_degradation(executor=sweep_executor)
    )
    report("ablation_degradation", result.render())
    by_label = {p.label: p for p in result.points}
    # Condition 2: with lambda=300, C_off=600, damage needs D < 0.5.
    assert by_label["D=0.1"].fraction_above_rto > 0.01
    assert by_label["D=0.6"].fraction_above_rto < 0.005
    assert by_label["D=0.6"].drops < by_label["D=0.1"].drops / 10


def bench_ablation_condition1(benchmark, report, sweep_executor):
    result = run_once(
        benchmark, lambda: condition1_ablation(executor=sweep_executor)
    )
    report("ablation_condition1", result.render())
    ordered, inverted = result.points
    # Damage persists either way (front cap governs drops)...
    assert ordered.drops > 0 and inverted.drops > 0
    # ...but only the ordered case is analysable (Condition 1).
    assert ordered.predicted_rho and float(ordered.predicted_rho) > 0
    assert float(inverted.predicted_rho) == 0.0


def bench_ablation_attack_programs(benchmark, report, sweep_executor):
    result = run_once(
        benchmark, lambda: compare_attack_programs(executor=sweep_executor)
    )
    report("ablation_programs", result.render())
    by_label = {p.label.split()[0]: p for p in result.points}
    lock = by_label["lock"]
    saturate = by_label["saturate"]
    cleanse = by_label["cleanse"]
    # Scheduling-based contention (lock) dominates; bandwidth contention
    # (saturation, 4 VMs) is second; storage-based contention (LLC
    # cleansing) is the gentlest — the prior-work taxonomy's ordering.
    assert lock.fraction_above_rto > saturate.fraction_above_rto
    assert saturate.fraction_above_rto > cleanse.fraction_above_rto
    assert lock.client_p95 > 1.0
    assert cleanse.client_p95 < 0.2


def bench_ablation_target_tier(benchmark, report, sweep_executor):
    result = run_once(
        benchmark, lambda: sweep_target_tier(executor=sweep_executor)
    )
    report("ablation_target", result.render())
    by_label = {p.label: p for p in result.points}
    mysql = by_label["target=mysql"]
    tomcat = by_label["target=tomcat"]
    apache = by_label["target=apache"]
    # The bottleneck tier is the most damaging co-location target.
    assert mysql.fraction_above_rto > tomcat.fraction_above_rto
    assert tomcat.fraction_above_rto > apache.fraction_above_rto
    assert mysql.client_p95 > 1.0
    # Apache has so much headroom that Condition 2 fails there.
    assert apache.client_p95 < 0.2


def bench_ablation_service_distribution(benchmark, report, sweep_executor):
    result = run_once(
        benchmark, lambda: sweep_service_distribution(executor=sweep_executor)
    )
    report("ablation_distribution", result.render())
    # The amplification mechanism is insensitive to the service law:
    # all four distributions produce the > 1 s p95 at equal means.
    for point in result.points:
        assert point.client_p95 > 1.0, point.label
        assert point.fraction_above_rto > 0.03, point.label


def bench_ablation_rpc_vs_tandem(benchmark, report, sweep_executor):
    result = run_once(
        benchmark, lambda: rpc_vs_tandem(executor=sweep_executor)
    )
    report("ablation_rpc", result.render())
    rpc, tandem = result.points
    # The amplification mechanism: no thread coupling, no client damage.
    assert tandem.drops == 0
    assert rpc.drops > 0
    assert rpc.client_p99 > 5 * tandem.client_p99


def bench_ablation_switch_buffer(benchmark, report, sweep_executor):
    result = run_once(
        benchmark, lambda: sweep_switch_buffer(executor=sweep_executor)
    )
    report("ablation_switch_buffer", result.render())
    fractions = [p.fraction_above_rto for p in result.points]
    # Deeper fabric buffers monotonically absorb the descriptor-hold
    # burst; the shallow end drop-tails it into RTO stalls.
    assert fractions == sorted(fractions, reverse=True)
    assert fractions[0] > 0.01
    assert fractions[1] < fractions[0] / 5
    # The deep end digests the whole burst: no drops, clean tail.
    assert result.points[-1].drops == 0
    assert fractions[-1] == 0.0


def bench_ablation_ecn_threshold(benchmark, report, sweep_executor):
    result = run_once(
        benchmark, lambda: sweep_ecn_threshold(executor=sweep_executor)
    )
    report("ablation_ecn", result.render())
    by_label = {p.label: p for p in result.points}
    drop_tail = by_label["drop-tail"]
    low, mid = by_label["ecn@0.25"], by_label["ecn@0.5"]
    high = by_label["ecn@0.95"]
    # Admission is descriptor-driven: no threshold changes the drops.
    assert all(p.drops == 0 for p in result.points)
    # Thresholds at/below the 0.9 burst fill mark every ON-window
    # traversal — same marking, same pacing tax, regardless of where
    # below the fill the threshold sits.
    assert low.client_p95 == mid.client_p95
    assert low.client_p95 > drop_tail.client_p95
    # A threshold above the burst fill (0.95 > 0.9) never fires.
    assert abs(high.client_p95 - drop_tail.client_p95) < 1e-3


def bench_ablation_rto_schedule(benchmark, report, sweep_executor):
    result = run_once(
        benchmark, lambda: sweep_rto_schedule(executor=sweep_executor)
    )
    report("ablation_rto", result.render())
    fractions = [p.fraction_above_rto for p in result.points]
    p99s = [p.client_p99 for p in result.points]
    drops = [p.drops for p in result.points]
    # Tail damage grows monotonically along the schedule ordering:
    # in-burst retries without backoff, in-burst with backoff, the
    # RFC 6298 floor, a 3 s floor.
    assert fractions == sorted(fractions)
    assert p99s == sorted(p99s)
    assert drops == sorted(drops)
    # The 1 s floor is the amplification lever: an order of magnitude
    # over the sub-second schedules at p99.
    assert p99s[2] > 10 * p99s[0]


def bench_ablation_dual_tier(benchmark, report, sweep_executor):
    from repro.experiments import dual_tier_attack

    result = run_once(
        benchmark, lambda: dual_tier_attack(executor=sweep_executor)
    )
    report("ablation_dual_tier", result.render())
    single, dual_full, split = result.points
    # Two full-intensity attackers on different tiers: strictly more
    # damage than one (two millibottlenecks per interval, and the
    # staggered bursts catch TCP retries for multi-RTO tails).
    assert dual_full.fraction_above_rto > single.fraction_above_rto
    assert dual_full.client_p99 > single.client_p99
    # But *splitting* intensity across tiers collapses the attack:
    # Condition 2 is a per-host threshold, not a budget.
    assert split.fraction_above_rto < 0.01
    assert split.client_p95 < 0.2
